(* Backend-agnostic dispatch math for executing a partition plan.

   Both interpreters of a plan — the virtual-time simulator (Pinterp) and
   the real-parallel backend (Privagic_parallel.Parallel) — make the same
   decisions from the same plan: which chunk a participant runs, who leads
   a call site, who must receive the return value, which child sequence
   number an activation gets. This module holds those decisions so the two
   backends cannot drift; the backends keep only what genuinely differs
   (virtual clocks and fibers vs. domains and queues).

   Everything here is exception-free: lookups return options and each
   backend wraps misses in its own error type. The only exception that may
   escape is [Exec.Trap] from {!dispatch_extern} (unknown external), which
   both backends already treat as a program trap.

   All derived plan math (site presence, per-chunk register-use sets,
   allocation sites) is computed eagerly at [create] into immutable
   tables, so parallel workers share one instance with no locking. The
   only genuinely runtime-mutable state is the sequence agreement
   (fresh/child sequence numbers), which sits behind its own always-held
   mutex — uncontended in the single-threaded simulator. *)

open Privagic_pir
open Privagic_secure
open Privagic_partition
module Sgx = Privagic_sgx

type t = {
  plan : Plan.t;
  sites : (string * int, Ty.t) Hashtbl.t; (* multicolor alloc sites *)
  site_presence : (Infer.instance_key * int, Color.t list) Hashtbl.t;
      (* read-only after create: (pfunc, instr id) -> chunk colors *)
  chunk_uses : (string, (Func.t * (int, unit) Hashtbl.t) list) Hashtbl.t;
      (* read-only after create: registers each chunk reads, keyed by
         name and disambiguated by physical function identity *)
  mutable seq_counter : int;
  seq_table : (int * string * int * int, int) Hashtbl.t;
      (* (parent seq, func, instr, invocation) -> child seq *)
  invocations : (int * string * int * string, int ref) Hashtbl.t;
      (* (parent seq, func, instr, participant) -> count *)
  mu : Mutex.t; (* sequence agreement only *)
}

(* Registers read by some kept instruction or terminator of [chunk] — the
   eager form of Plan.chunk_uses. *)
let used_regs (chunk : Func.t) : (int, unit) Hashtbl.t =
  let set = Hashtbl.create 32 in
  Func.iter_instrs chunk (fun _ i ->
      List.iter (fun r -> Hashtbl.replace set r ()) (Instr.uses i));
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun r -> Hashtbl.replace set r ())
        (Instr.term_uses b.Block.term))
    chunk.Func.blocks;
  set

let create ?sites (plan : Plan.t) : t =
  let site_presence = Hashtbl.create 64 in
  let chunk_uses = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ (pf : Plan.pfunc) ->
      (* per-chunk instruction-id sets, then presence per known id *)
      let id_sets =
        List.map
          (fun (ci : Plan.chunk_info) ->
            let ids = Hashtbl.create 64 in
            Func.iter_instrs ci.Plan.ci_func (fun _ i ->
                Hashtbl.replace ids i.Instr.id ());
            (ci, ids))
          pf.Plan.pf_chunks
      in
      let all_ids = Hashtbl.create 64 in
      List.iter
        (fun (_, ids) ->
          Hashtbl.iter (fun id () -> Hashtbl.replace all_ids id ()) ids)
        id_sets;
      Hashtbl.iter
        (fun id () ->
          let colors =
            List.filter_map
              (fun ((ci : Plan.chunk_info), ids) ->
                if Hashtbl.mem ids id then Some ci.Plan.ci_color else None)
              id_sets
          in
          Hashtbl.replace site_presence (pf.Plan.pf_key, id) colors)
        all_ids;
      List.iter
        (fun (ci : Plan.chunk_info) ->
          let f = ci.Plan.ci_func in
          let bucket =
            match Hashtbl.find_opt chunk_uses f.Func.name with
            | Some l -> l
            | None -> []
          in
          if not (List.exists (fun (g, _) -> g == f) bucket) then
            Hashtbl.replace chunk_uses f.Func.name
              ((f, used_regs f) :: bucket))
        pf.Plan.pf_chunks)
    plan.Plan.pfuncs;
  {
    plan;
    sites =
      (match sites with
      | Some s -> s
      | None -> Exec.alloc_sites plan.Plan.pmodule);
    site_presence;
    chunk_uses;
    seq_counter = 0;
    seq_table = Hashtbl.create 64;
    invocations = Hashtbl.create 64;
    mu = Mutex.create ();
  }

let[@inline] locked t f =
  Mutex.lock t.mu;
  match f () with
  | v ->
    Mutex.unlock t.mu;
    v
  | exception e ->
    Mutex.unlock t.mu;
    raise e

(* ------------------------------------------------------------------ *)
(* color/zone mapping *)

let zone_of_color (c : Color.t) : Heap.zone =
  match c with
  | Color.Named e -> Heap.Enclave e
  | _ -> Heap.Unsafe

let cpu_of_color (c : Color.t) : Sgx.Machine.zone =
  match c with
  | Color.Named e -> Sgx.Machine.Enclave e
  | _ -> Sgx.Machine.Normal

(* §7.1: globals placed per the plan; unplaced globals are unsafe. *)
let global_zone (plan : Plan.t) name : Heap.zone =
  match List.assoc_opt name plan.Plan.global_placement with
  | Some c -> zone_of_color c
  | None -> Heap.Unsafe

(* Alloca placement: stack slots of a colored type go to that enclave;
   everything else follows the executing worker's partition. *)
let alloca_zone (ty : Ty.t) ~(current : Color.t) : Heap.zone =
  match Cenv.root_color ty with
  | Some (Color.Named e) -> Heap.Enclave e
  | Some _ | None -> zone_of_color current

(* ------------------------------------------------------------------ *)
(* plan lookups *)

let find_pfunc t key = Plan.find_pfunc t.plan key

(* The chunk a participant of color [c] executes for [pf]: its own chunk,
   or the single Free chunk of a pure-F (replicated) function. *)
let chunk_for (pf : Plan.pfunc) (c : Color.t) : Func.t option =
  let target = if pf.Plan.pf_colorset = [] then Color.Free else c in
  match Plan.find_chunk pf target with
  | Some ci -> Some ci.Plan.ci_func
  | None -> None

let find_entry (plan : Plan.t) name : Plan.entry_plan option =
  List.find_opt
    (fun (e : Plan.entry_plan) -> String.equal e.Plan.ep_name name)
    plan.Plan.entries

(* Every chunk function of the plan (cache pre-warming). *)
let chunk_funcs (plan : Plan.t) : Func.t list =
  Hashtbl.fold
    (fun _ (pf : Plan.pfunc) acc ->
      List.fold_left
        (fun acc (ci : Plan.chunk_info) -> ci.Plan.ci_func :: acc)
        acc pf.Plan.pf_chunks)
    plan.Plan.pfuncs []

(* Resolve a chunk function name back to its instance (spawn injection). *)
let locate_chunk (plan : Plan.t) (chunk : string) :
    (Infer.instance_key * Plan.pfunc * Color.t) option =
  let found = ref None in
  Hashtbl.iter
    (fun key (pf : Plan.pfunc) ->
      List.iter
        (fun (ci : Plan.chunk_info) ->
          if String.equal ci.Plan.ci_func.Func.name chunk then
            found := Some (key, pf, ci.Plan.ci_color))
        pf.Plan.pf_chunks)
    plan.Plan.pfuncs;
  !found

(* Colors of the chunks that contain instruction [id] — the participants
   of a call site within a non-pure-F caller. Precomputed at create. *)
let site_presence t (pf : Plan.pfunc) (id : int) : Color.t list =
  match Hashtbl.find_opt t.site_presence (pf.Plan.pf_key, id) with
  | Some l -> l
  | None -> []

(* Does chunk [f] read register [r]? (return-value need) Precomputed at
   create for every chunk of the plan; other functions fall back to the
   direct scan. *)
let chunk_needs t (f : Func.t) (r : int) : bool =
  let bucket =
    match Hashtbl.find_opt t.chunk_uses f.Func.name with
    | Some l -> l
    | None -> []
  in
  match List.find_opt (fun (g, _) -> g == f) bucket with
  | Some (_, set) -> Hashtbl.mem set r
  | None -> Plan.chunk_uses f r

(* §7.3.3: does this instruction carry a synchronization barrier here? *)
let barrier_at (pf : Plan.pfunc) (id : int) ~(participants : Color.t list) :
    bool =
  Hashtbl.mem pf.Plan.pf_barriers id && List.length participants > 1

(* ------------------------------------------------------------------ *)
(* sequence agreement *)

let fresh_seq t =
  locked t (fun () ->
      t.seq_counter <- t.seq_counter + 1;
      t.seq_counter)

(* Deterministically agreed child sequence number for the [n]-th execution
   of call site [instr] within parent activation [seq]: every participant
   computes the same value without communication, because they all execute
   the replicated call site the same number of times. The invocation
   counter is per participant ([who]); the (seq, func, instr, n) key is
   shared, so whichever participant gets there first allocates the number
   and the others find it. *)
let child_seq t ~(seq : int) ~(who : Color.t) ~(fname : string)
    ~(instr : int) : int =
  locked t (fun () ->
      let inv_key = (seq, fname, instr, Color.to_string who) in
      let counter =
        match Hashtbl.find_opt t.invocations inv_key with
        | Some r -> r
        | None ->
          let r = ref 0 in
          Hashtbl.replace t.invocations inv_key r;
          r
      in
      let n = !counter in
      incr counter;
      let key = (seq, fname, instr, n) in
      match Hashtbl.find_opt t.seq_table key with
      | Some s -> s
      | None ->
        t.seq_counter <- t.seq_counter + 1;
        let s = t.seq_counter in
        Hashtbl.replace t.seq_table key s;
        s)

(* ------------------------------------------------------------------ *)
(* call-site layout (§7.3.2) *)

type site = {
  s_leader : Color.t;        (* starts the missing chunks *)
  s_inter : Color.t list;    (* callee colors already at the site *)
  s_spawned : Color.t list;  (* callee colors that must be spawned *)
  s_ret_sender : Color.t option; (* who sends the return value *)
}

let site_layout ~(p_site : Color.t list) ~(callee_cs : Color.t list)
    ~(self : Color.t) : site =
  let leader = match p_site with d :: _ -> d | [] -> self in
  let inter = List.filter (fun d -> List.mem d p_site) callee_cs in
  let spawned = List.filter (fun d -> not (List.mem d p_site)) callee_cs in
  let ret_sender =
    match inter with
    | d :: _ -> Some d
    | [] -> ( match spawned with d :: _ -> Some d | [] -> None)
  in
  { s_leader = leader; s_inter = inter; s_spawned = spawned; s_ret_sender = ret_sender }

(* Participants outside the callee whose chunk reads the call's result
   register — they receive it in a cont message. *)
let ret_needers t ~(caller_pf : Plan.pfunc) ~(p_site : Color.t list)
    ~(callee_cs : Color.t list) (i : Instr.t) : Color.t list =
  match Instr.defines i with
  | None -> []
  | Some id ->
    List.filter
      (fun d ->
        (not (List.mem d callee_cs))
        &&
        match chunk_for caller_pf d with
        | Some f -> chunk_needs t f id
        | None -> false)
      p_site

(* Number of computed (register) F arguments at a call site — each one
   travels to the spawned chunks in its own cont message (the paper's
   trampolines), costing one crossing. *)
let f_reg_args (cp : Plan.call_plan) (i : Instr.t) : int =
  let call_args =
    match i.Instr.op with
    | Instr.Call (_, a) | Instr.Spawn (_, a) -> a
    | _ -> []
  in
  let rec count acs args n =
    match acs, args with
    | ac :: acs', arg :: args' ->
      let is_f_reg =
        Color.equal ac Color.Free
        && match arg with Value.Reg _ -> true | _ -> false
      in
      count acs' args' (if is_f_reg then n + 1 else n)
    | _ -> n
  in
  count cp.Plan.cp_key.Infer.ik_args call_args 0

(* §6.3/§7.3.4: the instance key under which an indirect call enters a
   defined function — scalar parameters keep their declared color,
   pointers enter at the mode's entry color. *)
let indirect_entry_key (plan : Plan.t) (f : Func.t) : Infer.instance_key =
  let entry_args =
    List.map
      (fun ((_, pty) : string * Ty.t) ->
        match Cenv.root_color pty with
        | Some c when not (Ty.is_pointer pty) -> c
        | _ -> Mode.entry_color plan.Plan.mode)
      f.Func.params
  in
  { Infer.ik_func = f.Func.name; Infer.ik_args = entry_args }

(* ------------------------------------------------------------------ *)
(* external dispatch (identical under both backends) *)

(* Execute a call to an undefined function on executor [ex], running as
   partition [color] inside caller instance function [caller]. Handles the
   §7.2 allocation special cases (multicolor structs go to unsafe memory
   with their colored fields split by Layout; [alloc_node2]) and charges
   the syscall cost before delegating to {!Externals.dispatch}.
   @raise Exec.Trap on an unknown external. *)
let dispatch_extern t (ex : Exec.t) ~(color : Color.t) ~(caller : string)
    (i : Instr.t) callee (args : Rvalue.t array) : Rvalue.t =
  ex.Exec.externs <- ex.Exec.externs + 1;
  (match callee with
  | "declassify" | "declassify_i64" ->
    let key = Color.to_string color in
    (match Hashtbl.find_opt ex.Exec.declass key with
    | Some r -> incr r
    | None -> Hashtbl.add ex.Exec.declass key (ref 1))
  | _ -> ());
  (match ex.Exec.obs_ring with
  | None -> ()
  | Some r ->
    Privagic_obs.Ring.record_now r ~code:Privagic_obs.Ring.code_extern
      ~arg:(Externals.syscall_weight callee));
  let malloc_zone = zone_of_color color in
  let zone_for (sty : Ty.t) =
    match sty.Ty.desc with
    | Ty.Struct name
      when (Layout.struct_layout ex.Exec.layout name).Layout.ls_multicolor ->
      Heap.Unsafe
    | _ -> malloc_zone
  in
  let tagged =
    match i.Instr.op with
    | Instr.Call ("malloc", _) -> Hashtbl.find_opt t.sites (caller, i.Instr.id)
    | _ -> None
  in
  match tagged with
  | Some sty ->
    (* §7.2: a multi-color structure lives in unsafe memory, its colored
       fields in their enclaves (Layout does the split) *)
    Rvalue.Ptr (Layout.alloc ex.Exec.layout ex.Exec.heap (zone_for sty) sty)
  | None -> (
    match Exec.alloc_node2 ex ~zone_for i with
    | Some r -> r
    | None -> (
      for _ = 1 to Externals.syscall_weight callee do
        Exec.charge ex
          (Sgx.Machine.syscall_cost ex.Exec.machine ~zone:ex.Exec.cpu)
      done;
      match Externals.dispatch ex ~malloc_zone callee args with
      | Some r -> r
      | None -> raise (Exec.Trap ("unknown external @" ^ callee))))
