(* Partitioned interpreter: executes a Plan over the SGX simulator with the
   runtime architecture of §7.3 — per application thread, one worker per
   partition color; spawn messages start missing chunks; cont messages carry
   F values (relaxed mode) and return values; everything runs in virtual
   time on the deterministic scheduler.

   Mapping to the paper's runtime:
   - a *direct call* (common color, §7.3.2) is an inline execution in the
     same worker — no crossing cost, like the paper's direct chunk call;
   - a *spawn message* starts a fiber on the target worker at
     [sender clock + crossing cost];
   - F arguments needed by spawned chunks and returned F values travel in
     cont messages, each costing one crossing (the paper's trampolines);
   - synchronization barriers (§7.3.3) are charged one crossing when the
     instance spans several partitions.

   The crossing cost is a parameter: the lock-free queue of the Privagic
   runtime by default, or the lock-based switchless call of the Intel SDK
   for the Intel-sdk baselines of Figs. 9-10. *)

open Privagic_pir
open Privagic_secure
open Privagic_partition
module Sgx = Privagic_sgx
module Sched = Privagic_runtime.Sched
module Vclock = Privagic_runtime.Vclock
module Tel = Privagic_telemetry

exception Error of string

type payload =
  | Cont of { seq : int; tag : tag; value : Rvalue.t }

and tag = Retval | Token

type mail = { sent_at : float; flow : int; payload : payload }

type worker = {
  w_thread : int;
  w_color : Color.t;
  w_track : int;                  (* telemetry track of this worker *)
  mutable w_mail : mail list;
}

(* One executing instance of a function in one worker.

   Host-order vs virtual-order: fibers share the simulated heap, so the
   order in which the host actually runs them must respect the memory
   dependencies between chunks. The type system confines cross-chunk flows
   to unsafe memory written by ignore-helpers (declassification,
   enclave -> U); we therefore run spawned enclave fibers to completion
   *before* the untrusted chunk's body whenever the spawner is untrusted,
   while virtual clocks still overlap (the spawner does not advance its
   clock while host-waiting — only the final response time takes the
   max of all participants, which is when the paper's runtime would have
   delivered it). Programs whose enclave chunks consume S data stored by
   the U chunk of the *same* activation are outside this model (documented
   in DESIGN.md). *)
type activation = {
  act_seq : int;                     (* shared across participants *)
  act_key : Infer.instance_key;
  act_pf : Plan.pfunc;
  act_participants : Color.t list;   (* P: colors executing this instance *)
  mutable act_pending : int;         (* spawned fibers still running *)
  mutable act_done_max : float;      (* latest completion among spawned *)
  mutable act_done_flow : int;       (* telemetry flow of that completion *)
  mutable act_colors_done : Color.t list; (* spawned chunks completed *)
}

type fiber_ctx = {
  worker : worker;
  mutable act : activation;
  clock : Vclock.t;
}

(* Execution trace: the message/chunk schedule of a request, in virtual
   time — the runtime's own Figure 7. *)
type event =
  | Ev_spawn of { target : Color.t; chunk : string }
  | Ev_cont of { target : Color.t; tag : string }
  | Ev_chunk_start of { color : Color.t; chunk : string }
  | Ev_chunk_end of { color : Color.t; chunk : string }
  | Ev_barrier of { color : Color.t }

type traced_event = { ev_at : float; ev : event }

type t = {
  plan : Plan.t;
  exec : Exec.t;
  disp : Dispatch.t;                           (* shared plan math *)
  sched : Sched.t;
  workers : (int * string, worker) Hashtbl.t;
  crossing : Sgx.Machine.t -> float;           (* cost of one boundary msg *)
  mutable current : fiber_ctx option;
  thread_clock : (int, Vclock.t) Hashtbl.t;
  mutable next_thread : int;
  mutable traps : string list;
  mutable guard : bool;  (* §8 extension: valid-spawn-sequence guard *)
  mutable trace : traced_event list option; (* newest first when tracing *)
  mutable tel : Tel.Recorder.t;  (* structured telemetry (off by default) *)
}

let cpu_of_color = Dispatch.cpu_of_color

let worker t thread color =
  let key = (thread, Color.to_string color) in
  match Hashtbl.find_opt t.workers key with
  | Some w -> w
  | None ->
    let track =
      Tel.Recorder.fresh_track t.tel
        (Printf.sprintf "t%d/%s" thread (Color.to_string color))
    in
    let w = { w_thread = thread; w_color = color; w_track = track;
              w_mail = [] } in
    Hashtbl.replace t.workers key w;
    w

let thread_clock t thread =
  match Hashtbl.find_opt t.thread_clock thread with
  | Some r -> r
  | None ->
    let r = Vclock.make 0.0 in
    Hashtbl.replace t.thread_clock thread r;
    r

let restore t (ctx : fiber_ctx) =
  t.current <- Some ctx;
  t.exec.Exec.clock <- ctx.clock;
  t.exec.Exec.cpu <- cpu_of_color ctx.worker.w_color;
  (* keep the machine's telemetry context on the right worker track *)
  if Tel.Recorder.enabled t.tel then
    Tel.Recorder.set_track t.tel ctx.worker.w_track

let ctx_exn t =
  match t.current with
  | Some c -> c
  | None -> raise (Error "no current fiber")

let record t at ev =
  match t.trace with
  | Some evs -> t.trace <- Some ({ ev_at = at; ev } :: evs)
  | None -> ()

(* ------------------------------------------------------------------ *)
(* messaging *)

let send_cont t (ctx : fiber_ctx) (target : worker) ~seq ~tag ~value =
  let cost = t.crossing t.exec.Exec.machine in
  Vclock.add ctx.clock (cost);
  let tag_name = match tag with Retval -> "retval" | Token -> "token" in
  record t (Vclock.get ctx.clock) (Ev_cont { target = target.w_color; tag = tag_name });
  let flow =
    if Tel.Recorder.enabled t.tel then begin
      let f = Tel.Recorder.fresh_flow t.tel in
      Tel.Recorder.record t.tel ~at:(Vclock.get ctx.clock) ~track:ctx.worker.w_track
        ~name:tag_name ~arg:f Tel.Event.Msg_send;
      f
    end
    else -1
  in
  target.w_mail <-
    target.w_mail
    @ [ { sent_at = (Vclock.get ctx.clock); flow; payload = Cont { seq; tag; value } } ]

let wait_cont t (ctx : fiber_ctx) ~seq ~tag : Rvalue.t =
  let w = ctx.worker in
  let matches m =
    match m.payload with
    | Cont c -> c.seq = seq && c.tag = tag
  in
  let pred () = List.exists matches w.w_mail in
  let arrival () =
    match List.find_opt matches w.w_mail with
    | Some m -> m.sent_at
    | None -> (Vclock.get ctx.clock)
  in
  Sched.block pred arrival;
  restore t ctx;
  let msg =
    match List.find_opt matches w.w_mail with
    | Some m -> m
    | None -> raise (Error "wait_cont: message vanished")
  in
  w.w_mail <- List.filter (fun m -> not (m == msg)) w.w_mail;
  Vclock.set ctx.clock (Float.max (Vclock.get ctx.clock) msg.sent_at);
  if Tel.Recorder.enabled t.tel && msg.flow >= 0 then
    Tel.Recorder.record t.tel ~at:(Vclock.get ctx.clock) ~track:w.w_track ~arg:msg.flow
      Tel.Event.Msg_recv;
  match msg.payload with Cont c -> c.value

(* ------------------------------------------------------------------ *)
(* plan helpers *)

let pfunc_exn t key =
  match Dispatch.find_pfunc t.disp key with
  | Some pf -> pf
  | None ->
    raise (Error ("no partitioned function for " ^ Infer.instance_name key))

(* The chunk a participant of color [c] executes for [pf]. *)
let chunk_for (pf : Plan.pfunc) (c : Color.t) : Func.t =
  match Dispatch.chunk_for pf c with
  | Some f -> f
  | None ->
    raise
      (Error
         (Printf.sprintf "no %s chunk in %s" (Color.to_string c)
            (Infer.instance_name pf.Plan.pf_key)))

let site_presence t pf id = Dispatch.site_presence t.disp pf id
let chunk_needs t f r = Dispatch.chunk_needs t.disp f r
let fresh_seq t = Dispatch.fresh_seq t.disp

let child_seq t (ctx : fiber_ctx) (fname : string) (instr : int) : int =
  Dispatch.child_seq t.disp ~seq:ctx.act.act_seq ~who:ctx.worker.w_color
    ~fname ~instr

(* ------------------------------------------------------------------ *)
(* chunk execution *)

let rec exec_chunk t (ctx : fiber_ctx) (act : activation) (c : Color.t)
    (args : Rvalue.t array) : Rvalue.t =
  let saved = ctx.act in
  ctx.act <- act;
  let f = chunk_for act.act_pf c in
  record t (Vclock.get ctx.clock) (Ev_chunk_start { color = c; chunk = f.Func.name });
  if Tel.Recorder.enabled t.tel then
    Tel.Recorder.record t.tel ~at:(Vclock.get ctx.clock) ~track:ctx.worker.w_track
      ~name:f.Func.name Tel.Event.Chunk_begin;
  let r = Exec.exec_func t.exec f args in
  record t (Vclock.get ctx.clock) (Ev_chunk_end { color = c; chunk = f.Func.name });
  if Tel.Recorder.enabled t.tel then
    Tel.Recorder.record t.tel ~at:(Vclock.get ctx.clock) ~track:ctx.worker.w_track
      ~name:f.Func.name Tel.Event.Chunk_end;
  ctx.act <- saved;
  r

(* Start a fiber executing chunk [c] of [act] on worker (thread, c).
   [siblings] is the full set of chunks spawned together for the same
   activation: fibers run in color order (host side) so that
   declassifications flow forward — a fiber also inherits the completion
   time of the stage before it, which models the cont/wait dependency
   chain of the paper's runtime between enclaves of one activation. *)
and spawn_chunk_fiber t ?(forged = false) ~thread (act : activation)
    (c : Color.t) ?(siblings = []) (args : Rvalue.t array) ~at
    ~(reply_to : (int * Color.t) list) =
  let w = worker t thread c in
  let chunk_name = (chunk_for act.act_pf c).Func.name in
  (* §8 extension: the valid-spawn-sequence guard. Every spawn — including
     injected ones — is validated against the plan's legitimate targets. *)
  if
    t.guard && forged
    && not (Plan.spawn_allowed t.plan c chunk_name)
  then raise (Error (Printf.sprintf "spawn guard: %s rejected in %s"
                       chunk_name (Color.to_string c)));
  let name =
    Printf.sprintf "t%d/%s:%s" thread (Color.to_string c)
      (Infer.instance_name act.act_key)
  in
  act.act_pending <- act.act_pending + 1;
  record t at (Ev_spawn { target = c; chunk = chunk_name });
  (* spawn message: sender is whatever worker is currently running (the
     spawner), receiver is the fresh fiber on [w] *)
  let spawn_flow =
    if Tel.Recorder.enabled t.tel then begin
      let f = Tel.Recorder.fresh_flow t.tel in
      let from_track =
        match t.current with Some ctx -> ctx.worker.w_track | None -> w.w_track
      in
      Tel.Recorder.record t.tel ~at ~track:from_track ~name:"spawn" ~arg:f
        Tel.Event.Msg_send;
      f
    end
    else -1
  in
  let earlier = List.filter (fun d -> Color.compare d c < 0) siblings in
  ignore
    (Sched.spawn t.sched ~name ~track:w.w_track ~at (fun clock ->
         let ctx = { worker = w; act; clock } in
         restore t ctx;
         if spawn_flow >= 0 then
           Tel.Recorder.record t.tel ~at:(Vclock.get clock) ~track:w.w_track
             ~name:"spawn" ~arg:spawn_flow Tel.Event.Msg_recv;
         if earlier <> [] then begin
           Sched.block
             (fun () ->
               List.for_all
                 (fun d -> List.exists (Color.equal d) act.act_colors_done)
                 earlier)
             (fun () -> Float.max (Vclock.get clock) act.act_done_max);
           restore t ctx;
           let waited = (Vclock.get clock) < act.act_done_max in
           Vclock.set clock (Float.max (Vclock.get clock) act.act_done_max);
           if
             waited
             && Tel.Recorder.enabled t.tel
             && act.act_done_flow >= 0
           then
             Tel.Recorder.record t.tel ~at:(Vclock.get clock) ~track:w.w_track
               ~name:"done" ~arg:act.act_done_flow Tel.Event.Msg_recv
         end;
         (match exec_chunk t ctx act c args with
         | r ->
           List.iter
             (fun (th, color) ->
               send_cont t ctx (worker t th color) ~seq:act.act_seq ~tag:Retval
                 ~value:r)
             reply_to;
           let tc = thread_clock t thread in
           Vclock.set tc (Float.max (Vclock.get tc) (Vclock.get clock))
         | exception Exec.Trap msg ->
           t.traps <- (name ^ ": " ^ msg) :: t.traps);
         (* completion signal back to the spawner (one crossing) *)
         Vclock.add ctx.clock (t.crossing t.exec.Exec.machine);
         act.act_pending <- act.act_pending - 1;
         if (Vclock.get ctx.clock) >= act.act_done_max && Tel.Recorder.enabled t.tel
         then begin
           let f = Tel.Recorder.fresh_flow t.tel in
           Tel.Recorder.record t.tel ~at:(Vclock.get ctx.clock) ~track:w.w_track
             ~name:"done" ~arg:f Tel.Event.Msg_send;
           act.act_done_flow <- f
         end;
         act.act_done_max <- Float.max act.act_done_max (Vclock.get ctx.clock);
         act.act_colors_done <- c :: act.act_colors_done))

(* Host-side wait for every spawned fiber of [act] to finish. An enclave
   waiter is data-dependent on the spawned stage (the paper's cont/wait),
   so its clock advances to the stage's completion; the untrusted
   interface overlaps instead (Fig. 7) — its response time takes the max
   at the end of the request. *)
and host_wait_spawned ?(bump = true) t (ctx : fiber_ctx) (act : activation) =
  if act.act_pending > 0 then begin
    Sched.block (fun () -> act.act_pending = 0) (fun () -> (Vclock.get ctx.clock));
    restore t ctx;
    if bump && Color.is_enclave ctx.worker.w_color then begin
      let waited = (Vclock.get ctx.clock) < act.act_done_max in
      Vclock.set ctx.clock (Float.max (Vclock.get ctx.clock) act.act_done_max);
      if waited && Tel.Recorder.enabled t.tel && act.act_done_flow >= 0 then
        Tel.Recorder.record t.tel ~at:(Vclock.get ctx.clock)
          ~track:ctx.worker.w_track ~name:"done" ~arg:act.act_done_flow
          Tel.Event.Msg_recv
    end
  end

(* ------------------------------------------------------------------ *)
(* call dispatch *)

and dispatch_call t (i : Instr.t) callee (args : Rvalue.t array) : Rvalue.t =
  let ctx = ctx_exn t in
  match Hashtbl.find_opt ctx.act.act_pf.Plan.pf_calls i.Instr.id with
  | Some cp -> dispatch_local_call t ctx i cp args
  | None ->
    if Pmodule.is_defined t.exec.Exec.m callee then
      (* a defined function without a plan entry: a within-style direct
         execution in the current worker (single-participant call) *)
      raise
        (Error
           (Printf.sprintf "call to @%s at instr %d has no plan in %s" callee
              i.Instr.id
              (Infer.instance_name ctx.act.act_key)))
    else dispatch_extern t ctx i callee args

and dispatch_extern t (ctx : fiber_ctx) (i : Instr.t) callee args =
  Dispatch.dispatch_extern t.disp t.exec ~color:ctx.worker.w_color
    ~caller:ctx.act.act_key.Infer.ik_func i callee args

and dispatch_local_call t (ctx : fiber_ctx) (i : Instr.t) (cp : Plan.call_plan)
    (args : Rvalue.t array) : Rvalue.t =
  let c = ctx.worker.w_color in
  let thread = ctx.worker.w_thread in
  let callee_pf = pfunc_exn t cp.Plan.cp_key in
  let callee_cs = callee_pf.Plan.pf_colorset in
  let p_site =
    if ctx.act.act_pf.Plan.pf_colorset = [] then ctx.act.act_participants
    else site_presence t ctx.act.act_pf i.Instr.id
  in
  (* the site is identified by the *instance*, shared by all participants *)
  let seq = child_seq t ctx (Infer.instance_name ctx.act.act_key) i.Instr.id in
  let child_act =
    {
      act_seq = seq;
      act_key = cp.Plan.cp_key;
      act_pf = callee_pf;
      act_participants = (if callee_cs = [] then p_site else callee_cs);
      act_pending = 0;
      act_done_max = 0.0;
      act_done_flow = -1;
      act_colors_done = [];
    }
  in
  let in_callee d = List.mem d callee_cs in
  let { Dispatch.s_leader = leader; s_inter = inter; s_spawned = spawned;
        s_ret_sender = ret_sender } =
    Dispatch.site_layout ~p_site ~callee_cs ~self:c
  in
  (* which participants need the return value via message *)
  let needers =
    Dispatch.ret_needers t.disp ~caller_pf:ctx.act.act_pf ~p_site ~callee_cs i
  in
  (* the leader starts the missing chunks *)
  if Color.equal c leader && spawned <> [] then begin
    let f_reg_args = Dispatch.f_reg_args cp i in
    List.iter
      (fun d ->
        let reply_to =
          if inter = [] && Some d = ret_sender then
            List.map (fun n -> (thread, n)) needers
          else []
        in
        (* one spawn message, plus one cont per computed F argument *)
        let cost = t.crossing t.exec.Exec.machine in
        Vclock.add ctx.clock (cost);
        for _ = 1 to f_reg_args do
          Vclock.add ctx.clock (t.crossing t.exec.Exec.machine)
        done;
        spawn_chunk_fiber t ~thread child_act d ~siblings:spawned args ~at:(Vclock.get ctx.clock) ~reply_to)
      spawned;
    (* host ordering: an untrusted leader lets the enclave fibers run to
       completion before executing its own chunk, so that declassified
       values written to unsafe memory are visible to it *)
    if not (Color.is_enclave c) then host_wait_spawned t ctx child_act
  end;
  let result =
    if callee_cs = [] then
      (* pure-F callee: replicated, executes inline everywhere *)
      exec_chunk t ctx child_act c args
    else if in_callee c then begin
      (* direct call (§7.3.2): inline execution in this worker *)
      let r = exec_chunk t ctx child_act c args in
      restore t ctx;
      (if Some c = ret_sender && inter <> [] then
         List.iter
           (fun d ->
             send_cont t ctx (worker t thread d) ~seq ~tag:Retval ~value:r)
           needers);
      r
    end
    else if List.mem c needers then wait_cont t ctx ~seq ~tag:Retval
    else Rvalue.zero
  in
  (* an enclave leader waits after its own (direct) work *)
  if Color.equal c leader && Color.is_enclave c then
    host_wait_spawned t ctx child_act;
  result

(* Indirect call to a defined function (§6.3, §7.3.4): the interface-style
   entry executes in the current (untrusted) worker, which starts the
   missing chunks itself — the call site lives in a single chunk because an
   indirect call instruction is U-colored. *)
and dispatch_indirect_local t (ctx : fiber_ctx) (i : Instr.t) name
    (args : Rvalue.t array) : Rvalue.t =
  let f = Pmodule.find_func_exn t.exec.Exec.m name in
  let key = Dispatch.indirect_entry_key t.plan f in
  let pf = pfunc_exn t key in
  let cs = pf.Plan.pf_colorset in
  let c = ctx.worker.w_color in
  let thread = ctx.worker.w_thread in
  let act =
    {
      act_seq = fresh_seq t;
      act_key = key;
      act_pf = pf;
      act_participants = (if cs = [] then [ c ] else cs);
      act_pending = 0;
      act_done_max = 0.0;
      act_done_flow = -1;
      act_colors_done = [];
    }
  in
  if cs = [] then exec_chunk t ctx act c args
  else begin
    let i_need =
      match Instr.defines i with
      | None -> false
      | Some id ->
        (not (List.mem c cs)) && chunk_needs t (chunk_for ctx.act.act_pf c) id
    in
    let first = match cs with d :: _ -> d | [] -> c in
    let spawned_cs = List.filter (fun d -> not (Color.equal d c)) cs in
    List.iter
      (fun d ->
        let reply_to =
          if i_need && Color.equal d first then [ (thread, c) ] else []
        in
        Vclock.add ctx.clock (t.crossing t.exec.Exec.machine);
        spawn_chunk_fiber t ~thread act d ~siblings:spawned_cs args
          ~at:(Vclock.get ctx.clock) ~reply_to)
      spawned_cs;
    if List.mem c cs then exec_chunk t ctx act c args
    else if i_need then wait_cont t ctx ~seq:act.act_seq ~tag:Retval
    else Rvalue.zero
  end

(* thread creation: start every chunk of the target instance on the workers
   of a fresh application thread *)
and dispatch_spawn t (i : Instr.t) callee (args : Rvalue.t array) =
  let ctx = ctx_exn t in
  ignore callee;
  match Infer.call_site t.plan.Plan.infer ctx.act.act_key i.Instr.id with
  | None -> raise (Error "spawn site without plan")
  | Some key ->
    Exec.charge t.exec (Sgx.Machine.thread_spawn_cost t.exec.Exec.machine);
    let thread = t.next_thread in
    t.next_thread <- thread + 1;
    let pf = pfunc_exn t key in
    let cs = if pf.Plan.pf_colorset = [] then [ Color.Free ] else pf.Plan.pf_colorset in
    let act =
      {
        act_seq = fresh_seq t;
        act_key = key;
        act_pf = pf;
        act_participants = cs;
        act_pending = 0;
        act_done_max = 0.0;
      act_done_flow = -1;
      act_colors_done = [];
      }
    in
    List.iter
      (fun d ->
        Vclock.add ctx.clock (t.crossing t.exec.Exec.machine);
        spawn_chunk_fiber t ~thread act d ~siblings:cs args ~at:(Vclock.get ctx.clock) ~reply_to:[])
      cs

(* ------------------------------------------------------------------ *)

let make_hooks t : Exec.hooks =
  {
    Exec.h_call = (fun _ i callee args -> dispatch_call t i callee args);
    h_callind =
      (fun ex i fv args ->
        let name = Exec.resolve_func ex fv in
        if Pmodule.is_defined ex.Exec.m name then
          dispatch_indirect_local t (ctx_exn t) i name args
        else dispatch_extern t (ctx_exn t) i name args);
    h_spawn = (fun _ i callee args -> dispatch_spawn t i callee args);
    h_pre_instr =
      (fun ex i ->
        (* §7.3.3: a visible effect in a multi-partition instance costs a
           synchronization barrier (one cont/wait round) *)
        match t.current with
        | Some ctx
          when Dispatch.barrier_at ctx.act.act_pf i.Instr.id
                 ~participants:ctx.act.act_participants ->
          Exec.charge ex (t.crossing ex.Exec.machine);
          record t (Vclock.get ctx.clock) (Ev_barrier { color = ctx.worker.w_color });
          if Tel.Recorder.enabled t.tel then
            Tel.Recorder.record t.tel ~at:(Vclock.get ctx.clock)
              ~track:ctx.worker.w_track
              ~name:(Color.to_string ctx.worker.w_color) Tel.Event.Barrier
        | _ -> ());
    h_alloca_zone =
      (fun _ ty ->
        let current =
          match t.current with
          | Some ctx -> ctx.worker.w_color
          | None -> Color.Unsafe
        in
        Dispatch.alloca_zone ty ~current);
  }

let dummy_hooks : Exec.hooks =
  {
    Exec.h_call = (fun _ _ _ _ -> Rvalue.zero);
    h_callind = (fun _ _ _ _ -> Rvalue.zero);
    h_spawn = (fun _ _ _ _ -> ());
    h_pre_instr = (fun _ _ -> ());
    h_alloca_zone = (fun _ _ -> Heap.Unsafe);
  }

let create ?(config = Sgx.Config.machine_b) ?cost
    ?(crossing = Sgx.Machine.queue_msg_cost) ?engine (plan : Plan.t) : t =
  let engine =
    match engine with Some e -> e | None -> Exec.default_engine ()
  in
  let m = plan.Plan.pmodule in
  let machine = Sgx.Machine.create ?cost config in
  let heap = Heap.create () in
  let layout =
    Layout.create ~auth_pointers:plan.Plan.auth_pointers m plan.Plan.mode
  in
  let sites = Exec.alloc_sites m in
  let ex = Exec.create m heap layout machine dummy_hooks in
  let t =
    {
      plan;
      exec = ex;
      disp = Dispatch.create ~sites plan;
      sched = Sched.create ();
      workers = Hashtbl.create 16;
      crossing;
      current = None;
      thread_clock = Hashtbl.create 8;
      next_thread = 1;
      traps = [];
      guard = true;
      trace = None;
      tel = Tel.Recorder.null;
    }
  in
  ex.Exec.hooks <- make_hooks t;
  (* globals placed per §7.1 *)
  Exec.init_globals t.exec (Dispatch.global_zone plan);
  (match engine with
  | Exec.Image -> Image.install ex (Image.build ~plan ~sites ex)
  | Exec.Walk -> ());
  t

(* Attach a telemetry recorder to every layer: the scheduler records
   fiber lifecycle events, the machine records transition/fault events,
   and the recorder's clock follows the currently running worker. *)
let set_telemetry t (r : Tel.Recorder.t) =
  t.tel <- r;
  Sched.set_telemetry t.sched r;
  Sgx.Machine.set_telemetry t.exec.Exec.machine r;
  Tel.Recorder.set_now r (fun () -> (Vclock.get t.exec.Exec.clock))

(* ------------------------------------------------------------------ *)
(* entry points *)

type entry_result = {
  value : Rvalue.t;
  latency_cycles : float;            (* request latency, virtual cycles *)
  completed_at : float;
}

let call_entry t ?(thread = 0) ?max_steps name (args : Rvalue.t list) :
    entry_result =
  let ep =
    match
      List.find_opt (fun (e : Plan.entry_plan) -> String.equal e.ep_name name)
        t.plan.Plan.entries
    with
    | Some e -> e
    | None -> raise (Error ("not an entry point: " ^ name))
  in
  let pf = pfunc_exn t ep.Plan.ep_key in
  let cs = pf.Plan.pf_colorset in
  Heap.reset_stacks t.exec.Exec.heap;
  let now = (Vclock.get (thread_clock t thread)) in
  let argv = Array.of_list args in
  let act =
    {
      act_seq = fresh_seq t;
      act_key = ep.Plan.ep_key;
      act_pf = pf;
      act_participants = (if cs = [] then [ Color.Free ] else cs);
      act_pending = 0;
      act_done_max = 0.0;
      act_done_flow = -1;
      act_colors_done = [];
    }
  in
  let slot = ref None in
  let uw = worker t thread Color.Unsafe in
  let direct =
    if List.mem Color.Unsafe cs then Some Color.Unsafe
    else if cs = [] then Some Color.Free
    else None
  in
  (* interface fiber on the U worker (§7.3.4) *)
  let name_ = Printf.sprintf "t%d/interface:%s" thread name in
  ignore
    (* parent = its own track: a request is serialized after earlier
       requests on the same application thread (the thread clock) *)
    (Sched.spawn t.sched ~name:name_ ~track:uw.w_track ~parent:uw.w_track
       ~at:now (fun clock ->
         let ctx = { worker = uw; act; clock } in
         restore t ctx;
         (* start the missing chunks *)
         let spawned_cs =
           List.filter
             (fun d ->
               match direct with
               | Some dc -> not (Color.equal d dc)
               | None -> true)
             act.act_participants
         in
         List.iter
           (fun d ->
             let reply_to =
               if direct = None && Some d = (match cs with x :: _ -> Some x | [] -> None)
               then [ (thread, Color.Unsafe) ]
               else []
             in
             Vclock.add ctx.clock (t.crossing t.exec.Exec.machine);
             spawn_chunk_fiber t ~thread act d ~siblings:spawned_cs argv
               ~at:(Vclock.get ctx.clock) ~reply_to)
           spawned_cs;
         (* enclave chunks complete (host order) before the U chunk body *)
         host_wait_spawned t ctx act;
         let r =
           match direct with
           | Some dc -> exec_chunk t ctx act dc argv
           | None -> wait_cont t ctx ~seq:act.act_seq ~tag:Retval
         in
         (* the response leaves once every participant is done; when an
            enclave finished last, its completion signal gates the
            response — a binding happens-before edge *)
         let finish = Float.max (Vclock.get ctx.clock) act.act_done_max in
         if
           Tel.Recorder.enabled t.tel
           && act.act_done_max > (Vclock.get ctx.clock)
           && act.act_done_flow >= 0
         then
           Tel.Recorder.record t.tel ~at:finish ~track:uw.w_track
             ~name:"done" ~arg:act.act_done_flow Tel.Event.Msg_recv;
         slot := Some (r, finish);
         let tc = thread_clock t thread in
         Vclock.set tc (Float.max (Vclock.get tc) finish)));
  let outcome = Sched.run ?max_steps t.sched in
  (match t.traps with
  | [] -> ()
  | msgs ->
    t.traps <- [];
    raise (Error (String.concat "; " msgs)));
  match !slot with
  | Some (value, completed_at) ->
    { value; latency_cycles = completed_at -. now; completed_at }
  | None -> (
    match outcome with
    | Sched.Budget_exhausted n ->
      raise
        (Error
           (Printf.sprintf "entry %s: step budget exhausted after %d steps"
              name n))
    | Sched.Completed | Sched.Blocked_workers _ ->
      raise (Error ("entry " ^ name ^ " did not complete")))

let output t = Buffer.contents t.exec.Exec.out
let machine t = t.exec.Exec.machine

(* ------------------------------------------------------------------ *)
(* §8 extension: attack surface.

   [inject_spawn] models an attacker who writes a forged spawn message
   into a worker's queue. With the valid-spawn-sequence guard on (the
   default), the runtime rejects any chunk the plan never spawns into that
   partition; with the guard off, the forged chunk executes — the attack
   the paper leaves open. *)

let inject_spawn t ?(thread = 0) ~(color : Color.t) ~(chunk : string)
    (args : Rvalue.t list) : (unit, string) result =
  (* resolve the chunk name to an instance *)
  match Dispatch.locate_chunk t.plan chunk with
  | None -> Result.Error ("no such chunk: " ^ chunk)
  | Some (key, pf, cc) ->
    if not (Color.equal cc color) then
      Result.Error
        (Printf.sprintf "chunk %s belongs to partition %s" chunk
           (Color.to_string cc))
    else begin
      let act =
        {
          act_seq = fresh_seq t;
          act_key = key;
          act_pf = pf;
          act_participants = [ color ];
          act_pending = 0;
          act_done_max = 0.0;
          act_done_flow = -1;
          act_colors_done = [];
        }
      in
      let now = (Vclock.get (thread_clock t thread)) in
      match
        spawn_chunk_fiber t ~forged:true ~thread act color
          (Array.of_list args) ~at:now ~reply_to:[]
      with
      | () ->
        ignore (Sched.run t.sched : Sched.outcome);
        (match t.traps with
        | [] -> Result.Ok ()
        | msgs ->
          t.traps <- [];
          Result.Error (String.concat "; " msgs))
      | exception Error msg -> Result.Error msg
    end

(* Enable/disable the spawn guard (for the attack demonstrations). *)
let set_spawn_guard t enabled = t.guard <- enabled

(* ------------------------------------------------------------------ *)
(* execution tracing *)

let start_trace t = t.trace <- Some []

let stop_trace t : traced_event list =
  let evs = match t.trace with Some evs -> List.rev evs | None -> [] in
  t.trace <- None;
  evs

let pp_event fmt (te : traced_event) =
  let open Format in
  match te.ev with
  | Ev_spawn { target; chunk } ->
    fprintf fmt "%10.0f  spawn  -> %-6s %s" te.ev_at (Color.to_string target)
      chunk
  | Ev_cont { target; tag } ->
    fprintf fmt "%10.0f  cont   -> %-6s (%s)" te.ev_at
      (Color.to_string target) tag
  | Ev_chunk_start { color; chunk } ->
    fprintf fmt "%10.0f  start  in %-6s %s" te.ev_at (Color.to_string color)
      chunk
  | Ev_chunk_end { color; chunk } ->
    fprintf fmt "%10.0f  end    in %-6s %s" te.ev_at (Color.to_string color)
      chunk
  | Ev_barrier { color } ->
    fprintf fmt "%10.0f  barrier in %-6s (visible effect)" te.ev_at
      (Color.to_string color)

let pp_trace fmt (evs : traced_event list) =
  Format.fprintf fmt "%10s  %s@." "cycles" "event";
  List.iter (fun te -> Format.fprintf fmt "%a@." pp_event te)
    (List.sort (fun a b -> Float.compare a.ev_at b.ev_at) evs)
