(* Instruction-level executor shared by the plain interpreter (Interp) and
   the partitioned interpreter (Pinterp). The driver supplies hooks for
   everything that differs between the two: call dispatch, thread spawning,
   per-instruction preludes (barriers), and stack-slot placement.

   Every instruction charges [cycles_per_instr]; every memory access goes
   through the cache model with the current CPU zone (enclave or normal)
   and the zone the data lives in. *)

open Privagic_pir
module Sgx = Privagic_sgx
module Vclock = Privagic_runtime.Vclock

exception Trap of string

(* Which executor runs function bodies: the original tree-walker, or the
   index-resolved loop over the flattened image (see Image). The image is
   the default; the walker stays as the differential oracle behind
   [--engine=walk] / PRIVAGIC_ENGINE=walk. *)
type engine = Walk | Image

let engine_of_string = function
  | "walk" -> Some Walk
  | "image" -> Some Image
  | _ -> None

let engine_name = function Walk -> "walk" | Image -> "image"

let default_engine () =
  match Sys.getenv_opt "PRIVAGIC_ENGINE" with
  | Some s -> (
    match engine_of_string (String.lowercase_ascii (String.trim s)) with
    | Some e -> e
    | None -> invalid_arg ("PRIVAGIC_ENGINE: unknown engine " ^ s))
  | None -> Image

type t = {
  m : Pmodule.t;
  heap : Heap.t;
  layout : Layout.t;
  machine : Sgx.Machine.t;
  globals : (string, int) Hashtbl.t;
  func_addrs : (string, int) Hashtbl.t;  (* function pointers *)
  addr_funcs : (int, string) Hashtbl.t;
  out : Buffer.t;
  mutable cpu : Sgx.Machine.zone;
  mutable clock : Vclock.t;
  mutable current_func : string;  (* name of the function being executed *)
  mutable steps : int;
  fuel : int;
  data_map : Heap.zone -> Sgx.Machine.zone;
  mutable hooks : hooks;
  reg_ty_cache : (string, (Func.t * (int, Ty.t) Hashtbl.t) list) Hashtbl.t;
      (* keyed by name, disambiguated by physical function identity:
         specialized instances share a bare name but not their registers *)
  mutable run_func : (t -> Func.t -> Rvalue.t array -> Rvalue.t) option;
      (* installed by Image.install; None runs the tree-walker *)
  mutable extern_tap : (t -> string -> Rvalue.t array -> unit) option;
      (* trace monitor hook (lib/robust): observes every external call
         before it executes — declassification authorization, program
         output, simulated network sends. Copied by [clone_shared], so
         parallel workers inherit the monitor. *)
  mutable externs : int; (* extern dispatches retired on this executor *)
  declass : (string, int ref) Hashtbl.t;
      (* declassification calls per color name; per-executor (parallel
         workers each own one), summed at metrics registration *)
  mutable obs_ring : Privagic_obs.Ring.t option;
      (* when attached, extern dispatches drop a point event here; None
         keeps the obs-off dispatch path a single int increment *)
}

and hooks = {
  h_call : t -> Instr.t -> string -> Rvalue.t array -> Rvalue.t;
  h_callind : t -> Instr.t -> Rvalue.t -> Rvalue.t array -> Rvalue.t;
  h_spawn : t -> Instr.t -> string -> Rvalue.t array -> unit;
  h_pre_instr : t -> Instr.t -> unit;
  h_alloca_zone : t -> Ty.t -> Heap.zone;
}

let default_data_map : Heap.zone -> Sgx.Machine.zone = function
  | Heap.Enclave e -> Sgx.Machine.Enclave e
  | Heap.Unsafe | Heap.Rodata -> Sgx.Machine.Normal

let charge t c = t.clock.Vclock.cycles <- t.clock.Vclock.cycles +. c

let charge_mem t addr size =
  let data =
    match Heap.zone_of t.heap addr with
    | z -> t.data_map z
    | exception Heap.Fault _ -> Sgx.Machine.Normal
  in
  charge t (Sgx.Machine.mem_cost t.machine ~cpu:t.cpu ~data addr size)

(* Charging a bulk byte-range (memcpy-style helpers). *)
let charge_range t addr size = if size > 0 then charge_mem t addr size

let reg_tys t (f : Func.t) =
  let bucket =
    match Hashtbl.find_opt t.reg_ty_cache f.Func.name with
    | Some l -> l
    | None -> []
  in
  match List.find_opt (fun (g, _) -> g == f) bucket with
  | Some (_, tbl) -> tbl
  | None ->
    let tbl = Privagic_secure.Cenv.reg_types f in
    Hashtbl.replace t.reg_ty_cache f.Func.name ((f, tbl) :: bucket);
    tbl

let create ?(fuel = 500_000_000) ?(data_map = default_data_map) m heap layout
    machine hooks =
  {
    m;
    heap;
    layout;
    machine;
    globals = Hashtbl.create 16;
    func_addrs = Hashtbl.create 16;
    addr_funcs = Hashtbl.create 16;
    out = Buffer.create 256;
    cpu = Sgx.Machine.Normal;
    clock = Vclock.make 0.0;
    current_func = "<entry>";
    steps = 0;
    fuel;
    data_map;
    hooks;
    reg_ty_cache = Hashtbl.create 16;
    run_func = None;
    extern_tap = None;
    externs = 0;
    declass = Hashtbl.create 4;
    obs_ring = None;
  }

(* A per-worker executor for the parallel backend: shares the module, heap,
   layout and the global/function-address tables (so all workers see one
   address space) but owns its machine, clock, CPU mode, output buffer and
   hooks. The shared tables must be pre-warmed (see [warm_caches]) before
   domains start, so that at run time they are read-only. *)
let clone_shared t ~machine ~hooks =
  {
    t with
    machine;
    hooks;
    out = Buffer.create 256;
    cpu = Sgx.Machine.Normal;
    clock = Vclock.make 0.0;
    current_func = "<entry>";
    steps = 0;
    externs = 0;
    declass = Hashtbl.create 4;
    obs_ring = None;
  }

(* ------------------------------------------------------------------ *)

let func_addr t name =
  match Hashtbl.find_opt t.func_addrs name with
  | Some a -> a
  | None ->
    let a = Heap.alloc t.heap Heap.Rodata 8 in
    Hashtbl.replace t.func_addrs name a;
    Hashtbl.replace t.addr_funcs a name;
    a

(* Populate the lazily-built shared tables — function addresses and the
   per-function register-type tables — for every module function plus any
   extra functions (partition chunks). After this, [func_addr] and
   [reg_tys] only read, which is what lets several domains share them
   without a lock. *)
let warm_caches t ~(extra : Func.t list) =
  Pmodule.iter_funcs t.m (fun f ->
      ignore (func_addr t f.Func.name);
      ignore (reg_tys t f));
  List.iter
    (fun (f : Func.t) ->
      ignore (func_addr t f.Func.name);
      ignore (reg_tys t f))
    extra

let size_of_ty t (ty : Ty.t) = max 1 (Layout.sizeof t.layout ty)

let scalar_size (ty : Ty.t) =
  match ty.Ty.desc with
  | Ty.I1 | Ty.I8 -> 1
  | _ -> 8

(* ------------------------------------------------------------------ *)
(* frames                                                              *)

type frame = {
  func : Func.t;
  regs : Rvalue.t array;
  tys : (int, Ty.t) Hashtbl.t;
}

let operand t (fr : frame) (v : Value.t) : Rvalue.t =
  match v with
  | Value.Reg r -> fr.regs.(r)
  | Value.Int (i, _) -> Rvalue.Int i
  | Value.Float f -> Rvalue.Flt f
  | Value.Str s -> Rvalue.Ptr (Heap.intern_string t.heap s)
  | Value.Global g -> (
    match Hashtbl.find_opt t.globals g with
    | Some a -> Rvalue.Ptr a
    | None -> raise (Trap (Printf.sprintf "unknown global @%s" g)))
  | Value.Func f -> Rvalue.Ptr (func_addr t f)
  | Value.Null _ -> Rvalue.Ptr 0
  | Value.Undef _ -> Rvalue.Int 0L

let set_reg (fr : frame) id v = if id >= 0 && id < Array.length fr.regs then fr.regs.(id) <- v

(* ------------------------------------------------------------------ *)
(* arithmetic                                                          *)

let exec_binop (op : Instr.binop) (a : Rvalue.t) (b : Rvalue.t) : Rvalue.t =
  let ia () = Rvalue.to_int64 a and ib () = Rvalue.to_int64 b in
  let fa () = Rvalue.to_float a and fb () = Rvalue.to_float b in
  match op with
  | Instr.Add -> (
    (* pointer arithmetic flows through geps, but be tolerant *)
    match a, b with
    | Rvalue.Ptr p, _ -> Rvalue.Ptr (p + Rvalue.to_int b)
    | _, Rvalue.Ptr p -> Rvalue.Ptr (p + Rvalue.to_int a)
    | _ -> Rvalue.Int (Int64.add (ia ()) (ib ())))
  | Instr.Sub -> (
    match a, b with
    | Rvalue.Ptr p, Rvalue.Int _ -> Rvalue.Ptr (p - Rvalue.to_int b)
    | _ -> Rvalue.Int (Int64.sub (ia ()) (ib ())))
  | Instr.Mul -> Rvalue.Int (Int64.mul (ia ()) (ib ()))
  | Instr.Sdiv ->
    if Int64.equal (ib ()) 0L then raise (Trap "division by zero")
    else Rvalue.Int (Int64.div (ia ()) (ib ()))
  | Instr.Srem ->
    if Int64.equal (ib ()) 0L then raise (Trap "modulo by zero")
    else Rvalue.Int (Int64.rem (ia ()) (ib ()))
  | Instr.And -> Rvalue.Int (Int64.logand (ia ()) (ib ()))
  | Instr.Or -> Rvalue.Int (Int64.logor (ia ()) (ib ()))
  | Instr.Xor -> Rvalue.Int (Int64.logxor (ia ()) (ib ()))
  | Instr.Shl -> Rvalue.Int (Int64.shift_left (ia ()) (Rvalue.to_int b land 63))
  | Instr.Ashr ->
    Rvalue.Int (Int64.shift_right (ia ()) (Rvalue.to_int b land 63))
  | Instr.Fadd -> Rvalue.Flt (fa () +. fb ())
  | Instr.Fsub -> Rvalue.Flt (fa () -. fb ())
  | Instr.Fmul -> Rvalue.Flt (fa () *. fb ())
  | Instr.Fdiv -> Rvalue.Flt (fa () /. fb ())

let exec_icmp (op : Instr.icmp) (a : Rvalue.t) (b : Rvalue.t) : Rvalue.t =
  let c = Int64.compare (Rvalue.to_int64 a) (Rvalue.to_int64 b) in
  let r =
    match op with
    | Instr.Eq -> c = 0
    | Instr.Ne -> c <> 0
    | Instr.Slt -> c < 0
    | Instr.Sle -> c <= 0
    | Instr.Sgt -> c > 0
    | Instr.Sge -> c >= 0
  in
  Rvalue.Int (if r then 1L else 0L)

let exec_fcmp (op : Instr.icmp) (a : Rvalue.t) (b : Rvalue.t) : Rvalue.t =
  let x = Rvalue.to_float a and y = Rvalue.to_float b in
  let r =
    match op with
    | Instr.Eq -> x = y
    | Instr.Ne -> x <> y
    | Instr.Slt -> x < y
    | Instr.Sle -> x <= y
    | Instr.Sgt -> x > y
    | Instr.Sge -> x >= y
  in
  Rvalue.Int (if r then 1L else 0L)

let exec_cast (op : Instr.castop) (v : Rvalue.t) (ty : Ty.t) : Rvalue.t =
  match op with
  | Instr.Bitcast -> v
  | Instr.Zext -> Rvalue.Int (Rvalue.to_int64 v)
  | Instr.Trunc -> (
    let i = Rvalue.to_int64 v in
    match ty.Ty.desc with
    | Ty.I1 -> Rvalue.Int (Int64.logand i 1L)
    | Ty.I8 -> Rvalue.Int (Int64.logand i 0xffL)
    | _ -> Rvalue.Int i)
  | Instr.Sitofp -> Rvalue.Flt (Int64.to_float (Rvalue.to_int64 v))
  | Instr.Fptosi -> Rvalue.Int (Int64.of_float (Rvalue.to_float v))
  | Instr.Ptrtoint -> Rvalue.Int (Rvalue.to_int64 v)
  | Instr.Inttoptr -> Rvalue.Ptr (Rvalue.to_int v)

(* ------------------------------------------------------------------ *)
(* gep                                                                 *)

let exec_gep t (fr : frame) (pointee : Ty.t) base steps : Rvalue.t =
  let addr = ref (Rvalue.to_addr (operand t fr base)) in
  let cur = ref pointee in
  List.iter
    (fun step ->
      match step with
      | Instr.Field k -> (
        match !cur.Ty.desc with
        | Ty.Struct sname ->
          let slot_addr = Layout.field_slot_address t.layout sname k !addr in
          let faddr, indirect = Layout.field_address t.layout t.heap sname k !addr in
          if indirect then begin
            (* the indirection load; with authenticated pointers also the
               MAC word and its verification (§8 extension) *)
            if t.layout.Layout.auth then begin
              charge_mem t slot_addr 16;
              charge t t.machine.Sgx.Machine.cost.Sgx.Cost.auth_check
            end
            else charge_mem t slot_addr 8
          end;
          addr := faddr;
          cur := Pmodule.field_ty t.m sname k
        | _ -> raise (Trap "gep: field step on a non-struct"))
      | Instr.Index v -> (
        let idx = Rvalue.to_int (operand t fr v) in
        match !cur.Ty.desc with
        | Ty.Arr (elt, _) ->
          addr := !addr + (idx * size_of_ty t elt);
          cur := elt
        | _ -> addr := !addr + (idx * size_of_ty t !cur)))
    steps;
  Rvalue.Ptr !addr

(* ------------------------------------------------------------------ *)
(* loads and stores                                                    *)

let do_load t addr (ty : Ty.t) : Rvalue.t =
  let sz = scalar_size ty in
  charge_mem t addr sz;
  match ty.Ty.desc with
  | Ty.F64 -> Rvalue.Flt (Heap.load_f64 t.heap addr)
  | Ty.Ptr _ | Ty.Fun _ -> Rvalue.Ptr (Int64.to_int (Heap.load t.heap addr 8))
  | Ty.I1 | Ty.I8 -> Rvalue.Int (Heap.load t.heap addr sz)
  | _ -> Rvalue.Int (Heap.load t.heap addr 8)

let do_store t addr (ty : Ty.t) (v : Rvalue.t) =
  let sz = scalar_size ty in
  charge_mem t addr sz;
  match ty.Ty.desc with
  | Ty.F64 -> Heap.store_f64 t.heap addr (Rvalue.to_float v)
  | Ty.I1 | Ty.I8 -> Heap.store t.heap addr sz (Rvalue.to_int64 v)
  | _ -> Heap.store t.heap addr 8 (Rvalue.to_int64 v)

(* Static element type behind the pointer operand of a load/store. *)
let elem_ty t (fr : frame) (p : Value.t) (fallback : Ty.t) : Ty.t =
  match p with
  | Value.Reg r -> (
    match Hashtbl.find_opt fr.tys r with
    | Some { Ty.desc = Ty.Ptr e; _ } -> e
    | _ -> fallback)
  | Value.Global g -> (
    match Pmodule.find_global t.m g with
    | Some gl -> gl.Pmodule.gty
    | None -> fallback)
  | Value.Str _ -> Ty.i8
  | _ -> fallback

(* ------------------------------------------------------------------ *)
(* function execution                                                  *)

let rec exec_func t (f : Func.t) (args : Rvalue.t array) : Rvalue.t =
  let saved_func = t.current_func in
  t.current_func <- f.Func.name;
  let r =
    match t.run_func with
    | Some run -> run t f args
    | None -> exec_func_body t f args
  in
  t.current_func <- saved_func;
  r

(* The tree-walking executor body. Also serves as the image engine's
   fallback for functions absent from the image. *)
and exec_func_body t (f : Func.t) (args : Rvalue.t array) : Rvalue.t =
  let fr =
    { func = f; regs = Array.make (max 1 f.Func.next_reg) Rvalue.zero;
      tys = reg_tys t f }
  in
  Array.iteri
    (fun k v -> if k < Array.length fr.regs then fr.regs.(k) <- v)
    args;
  let rec run_block (b : Block.t) (prev : string) : Rvalue.t =
    (* phis first, in parallel *)
    let phi_values =
      List.filter_map
        (fun (i : Instr.t) ->
          match i.Instr.op with
          | Instr.Phi entries -> (
            match List.assoc_opt prev entries with
            | Some v -> Some (i.Instr.id, operand t fr v)
            | None ->
              (* Verify rejects phis that miss a CFG predecessor; reaching
                 here means an unverified function — trap rather than
                 silently defaulting to zero. *)
              raise
                (Trap
                   (Printf.sprintf
                      "phi in %%%s of @%s has no entry for predecessor %%%s"
                      b.Block.label f.Func.name prev)))
          | _ -> None)
        b.Block.instrs
    in
    List.iter (fun (id, v) -> set_reg fr id v) phi_values;
    List.iter
      (fun (i : Instr.t) ->
        match i.Instr.op with Instr.Phi _ -> () | _ -> exec_instr t fr i)
      b.Block.instrs;
    match b.Block.term with
    | Instr.Br l -> run_block (Func.find_block_exn f l) b.Block.label
    | Instr.Condbr (c, tl, fl) ->
      let target = if Rvalue.truthy (operand t fr c) then tl else fl in
      run_block (Func.find_block_exn f target) b.Block.label
    | Instr.Ret None -> Rvalue.Unit
    | Instr.Ret (Some v) -> operand t fr v
    | Instr.Unreachable -> raise (Trap "unreachable executed")
  in
  run_block (Func.entry_block f) "<entry>"

and exec_instr t (fr : frame) (i : Instr.t) =
  t.steps <- t.steps + 1;
  if t.steps > t.fuel then raise (Trap "fuel exhausted");
  t.hooks.h_pre_instr t i;
  charge t (Sgx.Machine.instr_cost t.machine 1);
  match i.Instr.op with
  | Instr.Alloca ty ->
    let zone = t.hooks.h_alloca_zone t ty in
    let addr = Layout.alloc_stack t.layout t.heap zone ty in
    set_reg fr i.id (Rvalue.Ptr addr)
  | Instr.Load p ->
    let addr = Rvalue.to_addr (operand t fr p) in
    let ty = if Ty.equal i.ty Ty.void then elem_ty t fr p Ty.i64 else i.ty in
    set_reg fr i.id (do_load t addr ty)
  | Instr.Store (v, p) ->
    let addr = Rvalue.to_addr (operand t fr p) in
    let ty = elem_ty t fr p Ty.i64 in
    do_store t addr ty (operand t fr v)
  | Instr.Binop (op, a, b) ->
    set_reg fr i.id (exec_binop op (operand t fr a) (operand t fr b))
  | Instr.Icmp (op, a, b) ->
    set_reg fr i.id (exec_icmp op (operand t fr a) (operand t fr b))
  | Instr.Fcmp (op, a, b) ->
    set_reg fr i.id (exec_fcmp op (operand t fr a) (operand t fr b))
  | Instr.Cast (op, v, ty) ->
    set_reg fr i.id (exec_cast op (operand t fr v) ty)
  | Instr.Gep (pointee, base, steps) ->
    set_reg fr i.id (exec_gep t fr pointee base steps)
  | Instr.Call (callee, args) ->
    let argv = Array.of_list (List.map (operand t fr) args) in
    let r = t.hooks.h_call t i callee argv in
    if not (Ty.equal i.ty Ty.void) then set_reg fr i.id r
  | Instr.Callind (fv, args) ->
    let argv = Array.of_list (List.map (operand t fr) args) in
    let r = t.hooks.h_callind t i (operand t fr fv) argv in
    if not (Ty.equal i.ty Ty.void) then set_reg fr i.id r
  | Instr.Phi _ -> () (* handled at block entry *)
  | Instr.Select (c, a, b) ->
    set_reg fr i.id
      (if Rvalue.truthy (operand t fr c) then operand t fr a
       else operand t fr b)
  | Instr.Spawn (callee, args) ->
    let argv = Array.of_list (List.map (operand t fr) args) in
    t.hooks.h_spawn t i callee argv

(* Resolve an indirect-call target. *)
let resolve_func t (fv : Rvalue.t) : string =
  match fv with
  | Rvalue.Ptr a -> (
    match Hashtbl.find_opt t.addr_funcs a with
    | Some name -> name
    | None -> raise (Trap "indirect call to a non-function address"))
  | _ -> raise (Trap "indirect call through a non-pointer")

(* Initialize globals: allocate every global in [zone_of] its name and store
   initial values. *)
let init_globals t (zone_of : string -> Heap.zone) =
  List.iter
    (fun (g : Pmodule.global) ->
      let zone = zone_of g.Pmodule.gname in
      let addr = Layout.alloc t.layout t.heap zone g.Pmodule.gty in
      Hashtbl.replace t.globals g.Pmodule.gname addr;
      match g.Pmodule.ginit with
      | None -> ()
      | Some (Value.Int (v, ty)) ->
        Heap.store t.heap addr (scalar_size ty) v
      | Some (Value.Float f) -> Heap.store_f64 t.heap addr f
      | Some (Value.Str s) ->
        Heap.store t.heap addr 8 (Int64.of_int (Heap.intern_string t.heap s))
      | Some (Value.Null _) -> Heap.store t.heap addr 8 0L
      | Some _ -> ())
    (Pmodule.globals_sorted t.m)

(* [alloc_node2] (two-color programs, §7.2): allocate one instance of the
   struct the destination global points to — splitting multi-color fields
   across enclaves happens in [Layout.alloc] — and publish its address
   through that global. *)
let alloc_node2 t ~(zone_for : Ty.t -> Heap.zone) (i : Instr.t) :
    Rvalue.t option =
  match i.op with
  | Instr.Call ("alloc_node2", Value.Global g :: _) -> (
    match Pmodule.find_global t.m g with
    | Some gl -> (
      match gl.Pmodule.gty.Ty.desc with
      | Ty.Ptr ({ Ty.desc = Ty.Struct _; _ } as sty) ->
        let addr = Layout.alloc t.layout t.heap (zone_for sty) sty in
        let gaddr = Hashtbl.find t.globals g in
        charge_mem t gaddr 8;
        Heap.store t.heap gaddr 8 (Int64.of_int addr);
        Some Rvalue.Unit
      | _ -> None)
    | None -> None)
  | _ -> None

(* Allocation-site analysis (§7.2): a call to malloc whose result is bitcast
   to a struct pointer allocates that struct — the partitioned heap then
   splits multi-color instances. Returns (function name, call instr id) ->
   struct type. *)
let alloc_sites (m : Pmodule.t) : (string * int, Ty.t) Hashtbl.t =
  let sites = Hashtbl.create 16 in
  Pmodule.iter_funcs m (fun f ->
      (* collect malloc result registers *)
      let mallocs = Hashtbl.create 8 in
      Func.iter_instrs f (fun _ i ->
          match i.Instr.op with
          | Instr.Call ("malloc", _) -> Hashtbl.replace mallocs i.Instr.id i
          | _ -> ());
      Func.iter_instrs f (fun _ i ->
          match i.Instr.op with
          | Instr.Cast (Instr.Bitcast, Value.Reg r, ty) -> (
            match Hashtbl.find_opt mallocs r, ty.Ty.desc with
            | Some (malloc_i : Instr.t), Ty.Ptr ({ Ty.desc = Ty.Struct _; _ } as sty) ->
              Hashtbl.replace sites (f.Func.name, malloc_i.Instr.id) sty
            | _ -> ())
          | _ -> ()));
  sites
