(** Partitioned interpreter: executes a {!Privagic_partition.Plan} over
    the SGX simulator with the runtime architecture of §7.3 — per
    application thread, one worker per partition color; spawn messages
    start missing chunks; cont messages carry F values and return values;
    everything runs in virtual time on the deterministic scheduler.

    Crossing costs are a parameter: the lock-free queue of the Privagic
    runtime by default, or the lock-based switchless call for the
    Intel-SDK baselines. See the implementation header and DESIGN.md §8.2
    for the host-order/virtual-order discipline. *)

open Privagic_pir
open Privagic_secure
open Privagic_partition
module Sgx = Privagic_sgx
module Sched = Privagic_runtime.Sched
module Tel = Privagic_telemetry

exception Error of string

type payload = Cont of { seq : int; tag : tag; value : Rvalue.t }
and tag = Retval | Token

type mail = { sent_at : float; flow : int; payload : payload }

type worker = {
  w_thread : int;
  w_color : Color.t;
  w_track : int;  (** telemetry track of this worker *)
  mutable w_mail : mail list;
}

type activation = {
  act_seq : int;
  act_key : Infer.instance_key;
  act_pf : Plan.pfunc;
  act_participants : Color.t list;
  mutable act_pending : int;
  mutable act_done_max : float;
  mutable act_done_flow : int;
  mutable act_colors_done : Color.t list;
}

type fiber_ctx = {
  worker : worker;
  mutable act : activation;
  clock : Privagic_runtime.Vclock.t;
}

(** Execution trace events (the runtime's own Figure 7). *)
type event =
  | Ev_spawn of { target : Color.t; chunk : string }
  | Ev_cont of { target : Color.t; tag : string }
  | Ev_chunk_start of { color : Color.t; chunk : string }
  | Ev_chunk_end of { color : Color.t; chunk : string }
  | Ev_barrier of { color : Color.t }

type traced_event = { ev_at : float; ev : event }

type t = {
  plan : Plan.t;
  exec : Exec.t;
  disp : Dispatch.t;  (** shared plan math (see {!Dispatch}) *)
  sched : Sched.t;
  workers : (int * string, worker) Hashtbl.t;
  crossing : Sgx.Machine.t -> float;
  mutable current : fiber_ctx option;
  thread_clock : (int, Privagic_runtime.Vclock.t) Hashtbl.t;
  mutable next_thread : int;
  mutable traps : string list;
  mutable guard : bool;
  mutable trace : traced_event list option;
  mutable tel : Tel.Recorder.t;
}

(** Build the VM for a plan; [crossing] prices one boundary message
    (default: the lock-free queue). [engine] selects the execution
    engine (default [Exec.default_engine ()]): [Image] lowers the plan
    into a flattened linked image shared by all fibers; [Walk] keeps
    the tree-walking oracle. *)
val create :
  ?config:Sgx.Config.t ->
  ?cost:Sgx.Cost.t ->
  ?crossing:(Sgx.Machine.t -> float) ->
  ?engine:Exec.engine ->
  Plan.t ->
  t

(** Attach a telemetry recorder across every layer of the VM: the
    scheduler (fiber lifecycle), the message layer (send/recv flows), the
    machine (transition and fault events), and the recorder's clock
    context. Pass {!Tel.Recorder.null} to detach. *)
val set_telemetry : t -> Tel.Recorder.t -> unit

type entry_result = {
  value : Rvalue.t;
  latency_cycles : float;
  completed_at : float;
}

(** Call an entry point through its §7.3.4 interface: spawn the missing
    chunks, run the untrusted chunk, deliver the response once every
    participant finished. State (heap, caches, clocks) persists across
    calls; per-request stack regions are rewound. [max_steps] bounds the
    scheduler steps spent on this request; exhaustion raises an [Error]
    distinguishable from non-completion ("step budget exhausted").
    @raise Error on runtime failures (including trapped fibers). *)
val call_entry :
  t -> ?thread:int -> ?max_steps:int -> string -> Rvalue.t list ->
  entry_result

val output : t -> string
val machine : t -> Sgx.Machine.t

(** §8 extension: inject a forged spawn message (the attacker model). With
    the guard on (default), chunks the plan never spawns into that
    partition are rejected. *)
val inject_spawn :
  t -> ?thread:int -> color:Color.t -> chunk:string -> Rvalue.t list ->
  (unit, string) result

val set_spawn_guard : t -> bool -> unit

(** Tracing: [start_trace] begins recording; [stop_trace] returns the
    events in emission order and stops recording. *)
val start_trace : t -> unit

val stop_trace : t -> traced_event list
val pp_event : Format.formatter -> traced_event -> unit
val pp_trace : Format.formatter -> traced_event list -> unit
