(* Plain (unpartitioned) interpreter. Used for:
   - functional reference runs (golden outputs for the partitioned VM),
   - the Unprotected baseline (everything in normal mode),
   - the Scone-like baseline (the whole application, data included, inside
     one enclave; syscalls become in-enclave switchless calls).

   Spawned threads run synchronously at the spawn point — the plain
   interpreter is a sequential reference; the interleaving explorer for the
   Fig. 3 experiment lives in the dataflow library. *)

open Privagic_pir
module Sgx = Privagic_sgx

type policy = {
  p_name : string;
  p_cpu : Sgx.Machine.zone;
  p_zone : Heap.zone;                       (* where all data lives *)
  p_entry_overhead : Sgx.Machine.t -> float; (* charged per entry call *)
}

(* Entry overhead: calling an exported function is free for the unprotected
   and Scone configurations — any OS interaction (network, locks) is
   modeled by the program's own extern calls, whose cost depends on the
   CPU zone. The Intel SDK port instead pays its ECALL at every entry. *)
let unprotected =
  {
    p_name = "unprotected";
    p_cpu = Sgx.Machine.Normal;
    p_zone = Heap.Unsafe;
    p_entry_overhead = (fun _ -> 0.0);
  }

(* Scone: the complete application and its data live in one enclave; every
   request enters through the network stack, i.e. in-enclave syscalls
   served by switchless threads (§9.2.3). *)
let scone =
  {
    p_name = "scone";
    p_cpu = Sgx.Machine.Enclave "scone";
    p_zone = Heap.Enclave "scone";
    p_entry_overhead = (fun _ -> 0.0);
  }

(* The single-enclave Intel SDK port (Intel-sdk-1, §9.3): the whole data
   structure lives in one enclave and every exported operation is one
   lock-based switchless ECALL. *)
let intel_sdk =
  {
    p_name = "intel-sdk";
    p_cpu = Sgx.Machine.Enclave "sdk";
    p_zone = Heap.Enclave "sdk";
    p_entry_overhead = (fun m -> Sgx.Machine.switchless_cost m);
  }

type t = {
  exec : Exec.t;
  policy : policy;
  sites : (string * int, Ty.t) Hashtbl.t;
  mutable spawned : int;
}

let rec hooks policy sites : Exec.hooks =
  {
    Exec.h_call =
      (fun ex i callee args ->
        match Pmodule.find_func ex.Exec.m callee with
        | Some f -> Exec.exec_func ex f args
        | None -> extern_call policy sites ex i callee args);
    h_callind =
      (fun ex i fv args ->
        let name = Exec.resolve_func ex fv in
        (hooks policy sites).Exec.h_call ex i name args);
    h_spawn =
      (fun ex _i callee args ->
        Exec.charge ex (Sgx.Machine.thread_spawn_cost ex.Exec.machine);
        match Pmodule.find_func ex.Exec.m callee with
        | Some f -> ignore (Exec.exec_func ex f args)
        | None -> raise (Exec.Trap ("spawn of unknown function " ^ callee)));
    h_pre_instr = (fun _ _ -> ());
    h_alloca_zone = (fun _ _ -> policy.p_zone);
  }

and extern_call policy sites ex (i : Instr.t) callee args =
  (* multi-color allocation sites go through the layout allocator *)
  let tagged =
    match i.Instr.op with
    | Instr.Call ("malloc", _) ->
      Hashtbl.find_opt sites (ex.Exec.current_func, i.Instr.id)
    | _ -> None
  in
  match tagged with
  | Some sty ->
    Rvalue.Ptr (Layout.alloc ex.Exec.layout ex.Exec.heap policy.p_zone sty)
  | None -> (
    match Exec.alloc_node2 ex ~zone_for:(fun _ -> policy.p_zone) i with
    | Some r -> r
    | None -> (
      for _ = 1 to Externals.syscall_weight callee do
        Exec.charge ex
          (Sgx.Machine.syscall_cost ex.Exec.machine ~zone:policy.p_cpu)
      done;
      match Externals.dispatch ex ~malloc_zone:policy.p_zone callee args with
      | Some r -> r
      | None -> raise (Exec.Trap ("unknown external @" ^ callee))))

let create ?(config = Sgx.Config.machine_b) ?cost ?(mode = Privagic_secure.Mode.Relaxed)
    ?engine (m : Pmodule.t) (policy : policy) : t =
  let engine =
    match engine with Some e -> e | None -> Exec.default_engine ()
  in
  let machine = Sgx.Machine.create ?cost config in
  let heap = Heap.create () in
  let layout = Layout.create m mode in
  let sites = Exec.alloc_sites m in
  let ex = Exec.create m heap layout machine (hooks policy sites) in
  ex.Exec.cpu <- policy.p_cpu;
  Exec.init_globals ex (fun _ -> policy.p_zone);
  (match engine with
  | Exec.Image -> Image.install ex (Image.build ~sites ex)
  | Exec.Walk -> ());
  { exec = ex; policy; sites; spawned = 0 }

(* Execute an exported function; returns the value, charging the per-entry
   overhead of the policy. *)
let call t name (args : Rvalue.t list) : Rvalue.t =
  let f = Pmodule.find_func_exn t.exec.Exec.m name in
  Heap.reset_stacks t.exec.Exec.heap;
  Exec.charge t.exec (t.policy.p_entry_overhead t.exec.Exec.machine);
  Exec.exec_func t.exec f (Array.of_list args)

let clock t = Privagic_runtime.Vclock.get t.exec.Exec.clock
let output t = Buffer.contents t.exec.Exec.out
let machine t = t.exec.Exec.machine
