(* Implementations of the external functions our mini-C programs declare.
   These play the role of the paper's mini-libc ([within] helpers available
   inside every enclave: malloc, memcpy, string helpers) and of the OS
   interface (print_*/net_* are syscalls into the untrusted world).

   [dispatch] returns [None] for names it does not know so that drivers can
   fail with a clear trap. The caller decides where malloc's memory lives
   (the enclave executing the within-call, per §6.3) and charges syscall
   costs per its own policy. *)

(* How many OS interactions an external performs. [net_recv] models the
   event-loop read side of memcached (epoll_wait + two reads), [net_send]
   the response (writev + event rearm); locks are futexes. Inside an
   enclave each of these is an expensive switchless/exit-based call —
   that difference is the heart of the Scone-vs-Privagic gap (§9.2.3). *)
let syscall_weight = function
  | "print_int" | "print_f64" | "print_str" | "puts" | "printf_hello"
  | "log_msg" ->
    1
  | "net_recv" -> 3
  | "net_send" -> 2
  | "lock" | "unlock" -> 1
  | "clock_tick" -> 1
  | _ -> 0

let is_syscall name = syscall_weight name > 0

(* Bulk byte-copy of [n] bytes. Word-sized inner loop; costs are charged by
   the caller as two range accesses. *)
let copy_bytes (heap : Heap.t) ~dst ~src n =
  let k = ref 0 in
  while !k + 8 <= n do
    Heap.store heap (dst + !k) 8 (Heap.load heap (src + !k) 8);
    k := !k + 8
  done;
  while !k < n do
    Heap.store heap (dst + !k) 1 (Heap.load heap (src + !k) 1);
    k := !k + 1
  done

let set_bytes (heap : Heap.t) ~dst v n =
  let word =
    let b = Int64.of_int (v land 0xff) in
    let rec go acc k = if k = 8 then acc else go (Int64.logor (Int64.shift_left acc 8) b) (k + 1) in
    go 0L 0
  in
  let k = ref 0 in
  while !k + 8 <= n do
    Heap.store heap (dst + !k) 8 word;
    k := !k + 8
  done;
  while !k < n do
    Heap.store heap (dst + !k) 1 (Int64.of_int (v land 0xff));
    k := !k + 1
  done

(* [dispatch t ~malloc_zone name args]: execute external [name]. *)
let dispatch (t : Exec.t) ~(malloc_zone : Heap.zone) name
    (args : Rvalue.t array) : Rvalue.t option =
  (* robust-safety monitor: sees the call before it executes, so a
     declassification is authorized before its store reaches the tap *)
  (match t.Exec.extern_tap with
  | None -> ()
  | Some f -> f t name args);
  let arg k = args.(k) in
  let int_arg k = Rvalue.to_int (arg k) in
  let addr_arg k = Rvalue.to_addr (arg k) in
  match name with
  | "malloc" ->
    let size = max 1 (int_arg 0) in
    Some (Rvalue.Ptr (Heap.alloc t.Exec.heap malloc_zone size))
  | "calloc" ->
    let size = max 1 (int_arg 0 * int_arg 1) in
    let a = Heap.alloc t.Exec.heap malloc_zone size in
    set_bytes t.Exec.heap ~dst:a 0 size;
    Some (Rvalue.Ptr a)
  | "free" ->
    Heap.free t.Exec.heap (addr_arg 0) 0;
    Some Rvalue.Unit
  | "memcpy" | "classify" | "declassify" ->
    let dst = addr_arg 0 and src = addr_arg 1 and n = int_arg 2 in
    Exec.charge_range t src n;
    Exec.charge_range t dst n;
    copy_bytes t.Exec.heap ~dst ~src n;
    Some (Rvalue.Ptr dst)
  | "classify_i64" | "declassify_i64" ->
    (* store one 64-bit value across a color boundary (§6.4) *)
    let dst = addr_arg 0 in
    Exec.charge_range t dst 8;
    Heap.store t.Exec.heap dst 8 (Rvalue.to_int64 (arg 1));
    Some Rvalue.Unit
  | "memset" ->
    let dst = addr_arg 0 and v = int_arg 1 and n = int_arg 2 in
    Exec.charge_range t dst n;
    set_bytes t.Exec.heap ~dst v n;
    Some (Rvalue.Ptr dst)
  | "memcmp" ->
    let a = addr_arg 0 and b = addr_arg 1 and n = int_arg 2 in
    Exec.charge_range t a n;
    Exec.charge_range t b n;
    let rec go k =
      if k >= n then 0
      else
        let x = Int64.to_int (Heap.load t.Exec.heap (a + k) 1)
        and y = Int64.to_int (Heap.load t.Exec.heap (b + k) 1) in
        if x = y then go (k + 1) else compare x y
    in
    Some (Rvalue.Int (Int64.of_int (go 0)))
  | "strncpy" ->
    let dst = addr_arg 0 and src = addr_arg 1 and n = int_arg 2 in
    Exec.charge_range t src n;
    Exec.charge_range t dst n;
    let rec go k stopped =
      if k < n then
        if stopped then begin
          Heap.store t.Exec.heap (dst + k) 1 0L;
          go (k + 1) true
        end
        else
          let b = Heap.load t.Exec.heap (src + k) 1 in
          Heap.store t.Exec.heap (dst + k) 1 b;
          go (k + 1) (Int64.equal b 0L)
    in
    go 0 false;
    Some (Rvalue.Ptr dst)
  | "strcmp" ->
    let a = addr_arg 0 and b = addr_arg 1 in
    let rec go k =
      let x = Int64.to_int (Heap.load t.Exec.heap (a + k) 1)
      and y = Int64.to_int (Heap.load t.Exec.heap (b + k) 1) in
      if x <> y then compare x y else if x = 0 then 0 else go (k + 1)
    in
    let r = go 0 in
    Exec.charge_range t a 8;
    Exec.charge_range t b 8;
    Some (Rvalue.Int (Int64.of_int r))
  | "strlen" ->
    let a = addr_arg 0 in
    let rec go k =
      if Int64.equal (Heap.load t.Exec.heap (a + k) 1) 0L then k else go (k + 1)
    in
    let n = go 0 in
    Exec.charge_range t a (n + 1);
    Some (Rvalue.Int (Int64.of_int n))
  | "print_int" ->
    Buffer.add_string t.Exec.out (Int64.to_string (Rvalue.to_int64 (arg 0)));
    Buffer.add_char t.Exec.out '\n';
    Some Rvalue.Unit
  | "print_f64" ->
    Buffer.add_string t.Exec.out (Printf.sprintf "%g\n" (Rvalue.to_float (arg 0)));
    Some Rvalue.Unit
  | "print_str" ->
    Buffer.add_string t.Exec.out (Heap.read_string t.Exec.heap (addr_arg 0));
    Buffer.add_char t.Exec.out '\n';
    Some Rvalue.Unit
  | "puts" | "log_msg" ->
    Buffer.add_string t.Exec.out (Heap.read_string t.Exec.heap (addr_arg 0));
    Buffer.add_char t.Exec.out '\n';
    Some Rvalue.Unit
  | "printf_hello" ->
    Buffer.add_string t.Exec.out "Hello\n";
    Some Rvalue.Unit
  | "net_send" | "net_recv" | "lock" | "unlock" | "clock_tick" ->
    (* modeled as pure syscall cost; payloads are handled by the harness *)
    Some (Rvalue.Int 0L)
  | _ -> None
