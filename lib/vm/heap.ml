(* Zoned, sparse, byte-addressed simulated memory.

   Each zone (unsafe memory, one per enclave, read-only data) owns a 2 GiB
   slice of a single flat address space; allocation is a bump pointer per
   zone. Storage is sparse — 4 KiB pages materialized on first touch — so
   simulating multi-hundred-MiB datasets only costs memory for the pages a
   workload actually writes. Address 0 is never mapped (null). *)

type zone = Unsafe | Enclave of string | Rodata

let zone_equal a b =
  match a, b with
  | Unsafe, Unsafe | Rodata, Rodata -> true
  | Enclave x, Enclave y -> String.equal x y
  | _ -> false

let zone_to_string = function
  | Unsafe -> "U"
  | Rodata -> "rodata"
  | Enclave e -> e

let region_bits = 31 (* 2 GiB per zone *)
let page_bits = 12

type region = {
  zone : zone;
  base : int;
  mutable brk : int; (* next free offset *)
  mutable pages : Bytes.t option array; (* indexed by offset lsr page_bits *)
  mutable live_bytes : int;
}

type t = {
  mutable regions : region list;
  mutable by_index : region option array;
      (* region n (1-based) owns addresses [n lsl region_bits, ...): the
         owning region of an address is by_index.(addr lsr region_bits) *)
  by_zone : (string, region) Hashtbl.t;
  strings : (string, int) Hashtbl.t; (* interned rodata strings *)
  mutable region_count : int;
  mu : Mutex.t;
  mutable sync : bool; (* serialize accesses (parallel backend) *)
  mutable store_tap : (int -> int -> int64 -> zone -> unit) option;
      (* trace monitor hook (lib/robust): observes every committed store —
         the one choke point both engines, the externals' byte copies, the
         parallel workers and the replication apply path all go through *)
}

exception Fault of int * string

let create () =
  {
    regions = [];
    by_index = Array.make 64 None;
    by_zone = Hashtbl.create 8;
    strings = Hashtbl.create 16;
    region_count = 0;
    mu = Mutex.create ();
    sync = false;
    store_tap = None;
  }

let set_store_tap t f = t.store_tap <- f

(* Concurrent mode: every public operation runs under [mu], making the heap
   usable from several domains at once (the parallel backend). The simulated
   backend leaves [sync] off and pays one boolean test per access. Data-level
   races of the *program* (two threads writing one address) keep whatever
   nondeterminism they have — the lock only protects the heap's own
   structures: the region list, the page tables, the bump pointers. *)
let set_concurrent t on = t.sync <- on

let[@inline] locked t f =
  if t.sync then begin
    Mutex.lock t.mu;
    match f () with
    | v ->
      Mutex.unlock t.mu;
      v
    | exception e ->
      Mutex.unlock t.mu;
      raise e
  end
  else f ()

let zone_key = function
  | Unsafe -> "\000U"
  | Rodata -> "\000R"
  | Enclave e -> e

let stack_key zone = "\001stack:" ^ zone_key zone

let index_region t r =
  let i = r.base lsr region_bits in
  if i >= Array.length t.by_index then begin
    let grown = Array.make (max (i + 1) (2 * Array.length t.by_index)) None in
    Array.blit t.by_index 0 grown 0 (Array.length t.by_index);
    t.by_index <- grown
  end;
  t.by_index.(i) <- Some r

let region_for t zone =
  let key = zone_key zone in
  match Hashtbl.find_opt t.by_zone key with
  | Some r -> r
  | None ->
    t.region_count <- t.region_count + 1;
    let r =
      {
        zone;
        base = t.region_count lsl region_bits;
        brk = 16; (* offset 0 of the first region would be null *)
        pages = Array.make 16 None;
        live_bytes = 0;
      }
    in
    Hashtbl.replace t.by_zone key r;
    t.regions <- r :: t.regions;
    index_region t r;
    r

let find_region t addr =
  let i = addr lsr region_bits in
  if i > 0 && i < Array.length t.by_index then
    match Array.unsafe_get t.by_index i with
    | Some r -> r
    | None -> raise (Fault (addr, "unmapped address"))
  else raise (Fault (addr, "unmapped address"))

(* The three per-instruction-frequency operations — [zone_of], [load],
   [store] — hand-inline [locked] so the single-domain backend's path is a
   boolean test with no closure allocation. *)
let zone_of t addr =
  if not t.sync then (find_region t addr).zone
  else begin
    Mutex.lock t.mu;
    match find_region t addr with
    | r ->
      Mutex.unlock t.mu;
      r.zone
    | exception e ->
      Mutex.unlock t.mu;
      raise e
  end

(* Bump allocation. Small objects are 8-byte aligned; objects of a cache
   line or more are line-aligned, as size-class allocators do — this also
   keeps simulated cache behaviour independent of the incidental phase of
   earlier allocations in the zone. *)
let alloc_u t zone size =
  let r = region_for t zone in
  let align = if size >= 64 then 64 else 8 in
  let off = (r.brk + align - 1) land lnot (align - 1) in
  let aligned = (size + align - 1) land lnot (align - 1) in
  if off + aligned >= 1 lsl region_bits then
    raise (Fault (r.base + off, "zone exhausted"));
  r.brk <- off + aligned;
  r.live_bytes <- r.live_bytes + aligned;
  r.base + off

let alloc t zone size = locked t (fun () -> alloc_u t zone size)

(* Stack slots live in a dedicated region per zone so that they do not
   perturb the heap layout; [reset_stacks] rewinds them between requests
   (frames of one request nest, and nothing refers to a dead frame),
   which also models the cache locality of a reused stack. *)
let region_for_key t zone key =
  match Hashtbl.find_opt t.by_zone key with
  | Some r -> r
  | None ->
    t.region_count <- t.region_count + 1;
    let r =
      {
        zone;
        base = t.region_count lsl region_bits;
        brk = 16;
        pages = Array.make 16 None;
        live_bytes = 0;
      }
    in
    Hashtbl.replace t.by_zone key r;
    t.regions <- r :: t.regions;
    index_region t r;
    r

let alloc_stack t zone size =
  locked t (fun () ->
      let r = region_for_key t zone (stack_key zone) in
      let aligned = (size + 7) land lnot 7 in
      let off = r.brk in
      if off + aligned >= 1 lsl region_bits then
        raise (Fault (r.base + off, "stack zone exhausted"));
      r.brk <- off + aligned;
      r.base + off)

let reset_stacks t =
  locked t (fun () ->
      Hashtbl.iter
        (fun key r ->
          if String.length key > 1 && key.[0] = '\001' then r.brk <- 16)
        t.by_zone)

let free t addr size =
  locked t (fun () ->
      match find_region t addr with
      | r -> r.live_bytes <- max 0 (r.live_bytes - ((size + 7) land lnot 7))
      | exception Fault _ -> ())

let page_of r off =
  let pno = off lsr page_bits in
  (if pno >= Array.length r.pages then begin
     let grown = Array.make (max (pno + 1) (2 * Array.length r.pages)) None in
     Array.blit r.pages 0 grown 0 (Array.length r.pages);
     r.pages <- grown
   end);
  match Array.unsafe_get r.pages pno with
  | Some p -> p
  | None ->
    let p = Bytes.make (1 lsl page_bits) '\000' in
    r.pages.(pno) <- Some p;
    p

let load_byte_u t addr =
  if addr = 0 then raise (Fault (0, "null dereference"));
  let r = find_region t addr in
  let off = addr - r.base in
  let p = page_of r off in
  Char.code (Bytes.get p (off land ((1 lsl page_bits) - 1)))

let store_byte_u t addr b =
  if addr = 0 then raise (Fault (0, "null dereference"));
  let r = find_region t addr in
  let off = addr - r.base in
  let p = page_of r off in
  Bytes.set p (off land ((1 lsl page_bits) - 1)) (Char.chr (b land 0xff))

(* Little-endian loads/stores of 1..8 bytes. Fast path: the access stays
   inside one 4 KiB page (the common case — allocations are 8-aligned). *)
let page_mask = (1 lsl page_bits) - 1

let load_u t addr size : int64 =
  if addr = 0 then raise (Fault (0, "null dereference"));
  let r = find_region t addr in
  let off = addr - r.base in
  let in_page = off land page_mask in
  if in_page + size <= 1 lsl page_bits then begin
    let p = page_of r off in
    if size = 8 then Bytes.get_int64_le p in_page
    else begin
      let v = ref 0L in
      for k = size - 1 downto 0 do
        v :=
          Int64.logor (Int64.shift_left !v 8)
            (Int64.of_int (Char.code (Bytes.get p (in_page + k))))
      done;
      !v
    end
  end
  else begin
    let v = ref 0L in
    for k = size - 1 downto 0 do
      v :=
        Int64.logor (Int64.shift_left !v 8)
          (Int64.of_int (load_byte_u t (addr + k)))
    done;
    !v
  end

let load t addr size =
  if not t.sync then load_u t addr size
  else begin
    Mutex.lock t.mu;
    match load_u t addr size with
    | v ->
      Mutex.unlock t.mu;
      v
    | exception e ->
      Mutex.unlock t.mu;
      raise e
  end

let store_u t addr size (v : int64) =
  if addr = 0 then raise (Fault (0, "null dereference"));
  let r = find_region t addr in
  let off = addr - r.base in
  let in_page = off land page_mask in
  if in_page + size <= 1 lsl page_bits then begin
    let p = page_of r off in
    if size = 8 then Bytes.set_int64_le p in_page v
    else
      for k = 0 to size - 1 do
        Bytes.set p (in_page + k)
          (Char.chr
             (Int64.to_int
                (Int64.logand (Int64.shift_right_logical v (8 * k)) 0xffL)))
      done
  end
  else
    for k = 0 to size - 1 do
      store_byte_u t (addr + k)
        (Int64.to_int
           (Int64.logand (Int64.shift_right_logical v (8 * k)) 0xffL))
    done

let store t addr size v =
  (if not t.sync then store_u t addr size v
   else begin
     Mutex.lock t.mu;
     match store_u t addr size v with
     | () -> Mutex.unlock t.mu
     | exception e ->
       Mutex.unlock t.mu;
       raise e
   end);
  (* fired after the store commits and outside the heap mutex — the
     monitor serializes itself; the store's region must exist here *)
  match t.store_tap with
  | None -> ()
  | Some f -> f addr size v (find_region t addr).zone

let load_f64 t addr = Int64.float_of_bits (load t addr 8)
let store_f64 t addr f = store t addr 8 (Int64.bits_of_float f)

(* Fold over the materialized pages of a zone (heap and stack regions
   alike) — the robust-safety monitor's whole-zone sweep for secret
   bytes. The page array reference is captured once per region, so a
   concurrent growth hands us a consistent (if slightly stale) view. *)
let fold_zone_pages t z ~init ~f =
  let regions =
    locked t (fun () -> List.filter (fun r -> zone_equal r.zone z) t.regions)
  in
  List.fold_left
    (fun acc r ->
      let pages = r.pages in
      let acc = ref acc in
      Array.iteri
        (fun k p ->
          match p with
          | Some page -> acc := f !acc (r.base + (k lsl page_bits)) page
          | None -> ())
        pages;
      !acc)
    init regions

(* Intern a string literal in rodata; returns its address (NUL-terminated). *)
let intern_string t s =
  locked t (fun () ->
      match Hashtbl.find_opt t.strings s with
      | Some addr -> addr
      | None ->
        let addr = alloc_u t Rodata (String.length s + 1) in
        String.iteri (fun k c -> store_byte_u t (addr + k) (Char.code c)) s;
        store_byte_u t (addr + String.length s) 0;
        Hashtbl.replace t.strings s addr;
        addr)

(* Read a NUL-terminated string back (diagnostics, print_str). *)
let read_string ?(max = 4096) t addr =
  locked t (fun () ->
      let buf = Buffer.create 16 in
      let rec go k =
        if k < max then
          let b = load_byte_u t (addr + k) in
          if b <> 0 then begin
            Buffer.add_char buf (Char.chr b);
            go (k + 1)
          end
      in
      go 0;
      Buffer.contents buf)

let live_bytes t zone =
  locked t (fun () ->
      match Hashtbl.find_opt t.by_zone (zone_key zone) with
      | Some r -> r.live_bytes
      | None -> 0)
