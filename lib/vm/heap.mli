(** Zoned, sparse, byte-addressed simulated memory.

    Each zone — unsafe memory, one per enclave, read-only data — owns a
    2 GiB slice of one flat address space. Storage is 4 KiB pages
    materialized on first touch, so multi-hundred-MiB datasets cost only
    the pages a workload actually writes. Address 0 is never mapped. *)

type zone = Unsafe | Enclave of string | Rodata

val zone_equal : zone -> zone -> bool
val zone_to_string : zone -> string

type t

exception Fault of int * string

val create : unit -> t

(** Concurrent mode (the parallel backend): serialize every heap operation
    under an internal mutex so several domains can share the heap. Off by
    default; the simulated backend pays one boolean test per access. The
    lock protects the heap's own structures (region list, page tables, bump
    pointers) — program-level data races keep their nondeterminism. *)
val set_concurrent : t -> bool -> unit

(** Bump allocation; 8-byte aligned, cache-line aligned from 64 bytes (as
    size-class allocators do). *)
val alloc : t -> zone -> int -> int

(** Allocation on the zone's stack region: separate from the heap so stack
    churn does not perturb heap layout. *)
val alloc_stack : t -> zone -> int -> int

(** Rewind every stack region; called between requests (frames of one
    request nest, nothing refers to a dead frame). *)
val reset_stacks : t -> unit

(** Deallocation is accounting-only (live-byte counters). *)
val free : t -> int -> int -> unit

val zone_of : t -> int -> zone

(** Little-endian load/store of 1..8 bytes.
    @raise Fault on address 0 or unmapped regions. *)
val load : t -> int -> int -> int64

val store : t -> int -> int -> int64 -> unit
val load_f64 : t -> int -> float
val store_f64 : t -> int -> float -> unit

(** Trace hook for the robust-safety monitor ({!Privagic_robust}): called
    as [f addr size value zone] after every committed {!store} — the one
    choke point through which both engines, the externals' byte copies,
    the parallel workers and the replication apply path write memory.
    Costs one option test per store when unset. The tap runs outside the
    heap mutex; a concurrent monitor must serialize itself. *)
val set_store_tap : t -> (int -> int -> int64 -> zone -> unit) option -> unit

(** Fold [f acc page_base page_bytes] over the materialized pages of a
    zone, heap and stack regions alike — the monitor's whole-zone sweep
    for secret byte patterns. *)
val fold_zone_pages :
  t -> zone -> init:'a -> f:('a -> int -> Bytes.t -> 'a) -> 'a

(** Intern a NUL-terminated string in the read-only zone. *)
val intern_string : t -> string -> int

val read_string : ?max:int -> t -> int -> string

(** Live bytes allocated in a zone (heap only). *)
val live_bytes : t -> zone -> int
