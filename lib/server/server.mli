(** The TCP serving layer: a socket front-end that drives a partitioned
    program under real concurrent load (the paper's §8 evaluation shape —
    memcached behind memtier-style clients — realized over this repo's
    runtime backends).

    Architecture (DESIGN.md §8.8): an acceptor thread hands connections
    to a fixed pool of connection workers; each worker parses the
    memcached-lite protocol ({!Protocol}) and pushes requests onto
    bounded per-lane queues (the runtime's own Michael–Scott queue) with
    backpressure — [Block] stalls the producer, [Shed] answers
    [SERVER_BUSY] above the high-water mark. One executor thread per
    lane pops batches, executes them against the partitioned store
    (coalescing duplicate adjacent [get]s inside a batch, which is exact
    because a batch executes atomically), records request-latency spans
    into the telemetry recorder, and writes the responses back.

    Entry execution is serialized across lanes by a store mutex: the
    runtime's host-order discipline protects state {e within} one
    activation, and the partitioned programs' [lock]/[unlock] externs
    are cost models, not real mutexes — so cross-request isolation must
    come from the server (memcached's own global cache lock, in
    miniature). Real parallelism remains inside each request, across
    the pool's per-partition domains. *)

module Tel = Privagic_telemetry

(** What the server needs from an execution backend. [st_call] is only
    invoked under the server's store mutex; the buffer helpers address
    the backend's simulated unsafe memory. *)
type store = {
  st_name : string;
  st_call :
    string -> Privagic_vm.Rvalue.t list -> (Privagic_vm.Rvalue.t, string) result;
  st_alloc : int -> int;
  st_write : int -> string -> unit;
  st_read : int -> int -> string;
  st_drain : unit -> unit;  (** close/join the backend (idempotent) *)
  st_register_obs : Privagic_obs.Registry.t -> unit;
      (** register the backend's gauges (steps, externs, lane phases,
          declassify counts) on the server's obs registry *)
}

val store_of_parallel : Privagic_parallel.Parallel.t -> store
val store_of_pinterp : Privagic_vm.Pinterp.t -> store

(** Entry points a key-value protocol maps onto. *)
type bindings = {
  b_family : string;
  b_set : string;
  b_get : string;
  b_del : string option;
  b_init : string option;  (** capacity-taking init entry, called by serve *)
  b_vcolor : string;
      (** color token of stored values on the replication wire: the
          enclave name the plan placed the store's globals in, or [U]
          for a plain (uncolored) plan. Frames with an enclave color are
          sealed by the shipper ({!Privagic_replication.Seal}). *)
}

(** Probe the plan's entry list for a known program family (the mc_,
    hm_, h2_, tm_, ll_ entry prefixes of the evaluation programs). *)
val bindings_of_plan : Privagic_partition.Plan.t -> bindings option

(** The replication value color of a plan (see {!bindings.b_vcolor}). *)
val value_color : Privagic_partition.Plan.t -> string

type policy = Block | Shed

type config = {
  host : string;            (** default 127.0.0.1 *)
  port : int;               (** 0 picks an ephemeral port; see {!port} *)
  lanes : int;              (** request queues; also the pool lane count *)
  queue_depth : int;        (** per-lane high-water mark *)
  policy : policy;
  max_batch : int;          (** requests executed per queue handoff *)
  vsize : int;              (** value-buffer size of the program *)
  conn_workers : int;
  telemetry : Tel.Recorder.t;
  repl_window : int;        (** in-flight deltas per replica (default 1024) *)
  repl_cluster : string;    (** sealing-key derivation secret *)
}

val default_config : config

type t

(** Bind, listen, and start the thread pool. The server is serving when
    [start] returns. [replica_of] starts it in the read-only replica
    role (the string is the primary's address, for display only — the
    caller runs the {!Privagic_replication.Replica} client and feeds
    {!apply_put}/{!apply_del}); {!promote} flips it to primary.
    @raise Failure when the socket cannot be bound. *)
val start : ?replica_of:string -> config -> bindings -> store -> t
(** The bound store must hold no keys yet: the transaction layer's
    version table and secondary indexes start empty and only advance
    through commit hooks, so keys pre-populated before [start] would be
    invisible to [scan], report version 0 via [getv], and fail the
    in-transaction del presence check. The known families' init entries
    all build empty tables. *)

val port : t -> int

(** Graceful drain: stop accepting, let connection workers flush every
    parsed request, close the lane queues (executors exit via the
    Msqueue drain protocol, so no queued request is lost), then drain
    the backend. Idempotent; safe to call from any thread, including a
    connection worker acting on a [shutdown] verb. *)
val drain : t -> unit

(** Block until a drain (triggered by {!drain} or a [shutdown] verb)
    completes. *)
val wait : t -> unit

val is_draining : t -> bool

type stats = {
  s_uptime : float;
  s_conns_accepted : int;
  s_conns_open : int;
  s_ops : int;              (** executed data-path requests (all verbs) *)
  s_gets : int;
  s_sets : int;
  s_dels : int;
  s_hits : int;
  s_shed : int;             (** requests answered SERVER_BUSY *)
  s_bad : int;              (** protocol errors answered CLIENT_ERROR *)
  s_batches : int;          (** queue handoffs *)
  s_coalesced : int;        (** duplicate gets served from a batch *)
  s_depth : int array;      (** current per-lane queue depth *)
  s_latency : Tel.Metrics.pctiles;  (** dispatch->response, microseconds *)
  s_queue_wait : Tel.Metrics.pctiles;  (** dispatch->execution, microseconds *)
  s_role : string;          (** ["primary"] or ["replica:<addr>"] *)
  s_replicas : int;         (** live replica connections (as a primary) *)
  s_repl_lag_us : float;    (** most recent send->ack lag sample *)
  s_repl_seq : int;         (** commit-log head *)
  s_applied : int;          (** deltas applied (as a replica) *)
  s_fence_timeouts : int;   (** sync fences that hit their timeout *)
  s_getv : int;
  s_cas : int;
  s_cas_conflicts : int;    (** CAS guards that lost to an earlier writer *)
  s_txns : int;             (** txn ... exec requests executed *)
  s_txn_commits : int;      (** committed transactions (incl. single-op cas) *)
  s_txn_aborts : int;       (** transactions aborted by a CAS guard *)
  s_scans : int;
  s_scan_items : int;       (** total items returned by scans *)
}

val stats : t -> stats

(** The [STAT k v] pairs of the protocol's [stats] verb. The historical
    fields keep their names and order; replication fields append. *)
val stats_fields : t -> (string * string) list

(** The server's live metrics registry (lib/obs) — what the
    [stats metrics] verb exposes. Populated at {!start} with server
    counters/summaries, per-lane queue depths, replication shipper
    gauges, and the backend store's contribution. *)
val metrics_registry : t -> Privagic_obs.Registry.t

(** {1 Replication}

    A primary needs no calls here: the [repl] handshake registers
    replica connections with the server's shipper, [set]/[del] commits
    append to its delta log, and {!drain} flushes the log tail to every
    replica. The functions below are the replica side and introspection
    (DESIGN.md §8.10). *)

(** Apply one delta received from the primary: executes through the same
    entry path as a client [set]/[del], under the store mutex, and
    mirrors the primary's seq into the local log. Fails on a seq gap. *)
val apply_put :
  t -> seq:int -> key:int -> payload:string -> (unit, string) result

val apply_del : t -> seq:int -> key:int -> (unit, string) result

(** Leave the read-only replica role and accept client writes; the
    promoted server's mirrored log lets downstream replicas keep
    streaming from their positions. *)
val promote : t -> unit

val is_replica : t -> bool

(** ["primary"] or ["replica:<addr>"]. *)
val role_name : t -> string

(** The commit log (convergence oracles replay it). *)
val repl_log : t -> Privagic_replication.Log.t

(** The delta shipper (lag percentiles, seal counters). *)
val repl_hub : t -> Privagic_replication.Shipper.t

(** Wire-capture tap for the robust-safety monitor ({!Privagic_robust}):
    observes every response byte any server in the process writes to a
    client connection, before the socket write. [None] detaches. The
    secrecy trace property asserts that no live secret-colored value
    appears on a client connection unsealed. *)
val set_wire_tap : (string -> unit) option -> unit
