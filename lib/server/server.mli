(** The TCP serving layer: a socket front-end that drives partitioned
    programs under real concurrent load (the paper's §8 evaluation shape
    — memcached behind memtier-style clients — realized over this
    repo's runtime backends).

    Architecture (DESIGN.md §8.14): the keyspace is hash-partitioned
    ([key mod shards]) across N single-writer shards. Each shard owns —
    exclusively — one execution backend instance (the caller builds one
    store per shard), its slice of the version table and secondary
    indexes, and an event loop on its own domain: nonblocking sockets,
    [Unix.select] readiness with self-pipe wakeups (no timeout
    polling), incremental parsing, and fully pipelined connections
    (many requests in flight per connection; responses flush strictly
    in arrival order).

    There is no global store mutex. Gets, sets and single-shard
    transactions execute entirely inside one shard, under a per-shard
    latch that only the owner loop takes on the hot path. Cross-shard
    requests hop to the owning shard over a bounded inbox; multi-shard
    transactions commit via two-phase commit under the participant
    latches (taken in ascending shard order), and scans merge per-shard
    index cursors without any global lock. Same-key requests of one
    connection always land in the same shard FIFO, so per-key program
    order is preserved; a multi-shard transaction or scan waits for the
    connection's earlier requests before executing (connection
    barrier). All shards append commit deltas to one shared log, so
    replication keeps a single merged monotone sequence. *)

module Tel = Privagic_telemetry

(** What the server needs from an execution backend. Each shard owns
    one store; [st_call] is only invoked under that shard's latch. The
    buffer helpers address the backend's simulated unsafe memory. *)
type store = {
  st_name : string;
  st_call :
    string -> Privagic_vm.Rvalue.t list -> (Privagic_vm.Rvalue.t, string) result;
  st_alloc : int -> int;
  st_write : int -> string -> unit;
  st_read : int -> int -> string;
  st_drain : unit -> unit;  (** close/join the backend (idempotent) *)
  st_register_obs : Privagic_obs.Registry.t -> unit;
      (** register the backend's gauges (steps, externs, lane phases,
          declassify counts) on the server's obs registry *)
}

val store_of_parallel : Privagic_parallel.Parallel.t -> store
val store_of_pinterp : Privagic_vm.Pinterp.t -> store

(** Entry points a key-value protocol maps onto. *)
type bindings = {
  b_family : string;
  b_set : string;
  b_get : string;
  b_del : string option;
  b_init : string option;  (** capacity-taking init entry, called by serve *)
  b_vcolor : string;
      (** color token of stored values on the replication wire: the
          enclave name the plan placed the store's globals in, or [U]
          for a plain (uncolored) plan. Frames with an enclave color are
          sealed by the shipper ({!Privagic_replication.Seal}). *)
}

(** Probe the plan's entry list for a known program family (the mc_,
    hm_, h2_, tm_, ll_ entry prefixes of the evaluation programs). *)
val bindings_of_plan : Privagic_partition.Plan.t -> bindings option

(** The replication value color of a plan (see {!bindings.b_vcolor}). *)
val value_color : Privagic_partition.Plan.t -> string

type policy = Block | Shed

type config = {
  host : string;            (** default 127.0.0.1 *)
  port : int;               (** 0 picks an ephemeral port; see {!port} *)
  shards : int;             (** single-writer keyspace shards (event loops) *)
  lanes : int;              (** per-shard backend pool lanes (display/config) *)
  queue_depth : int;        (** cross-shard inbox high-water mark; also the
                                local-batch shed threshold under [Shed] *)
  policy : policy;
  max_batch : int;          (** requests executed per latch hold *)
  vsize : int;              (** value-buffer size of the program *)
  telemetry : Tel.Recorder.t;
  repl_window : int;        (** in-flight deltas per replica (default 1024) *)
  repl_cluster : string;    (** sealing-key derivation secret *)
}

val default_config : config

(** Open client connections the acceptor admits before refusing with a
    clear error: [Unix.select] readiness breaks past FD_SETSIZE (1024),
    so the cap — surfaced in [STATS] as [fd_cap] — keeps every loop's
    fd set valid. *)
val fd_cap : int

type t

(** Bind, listen, and start the shard loops (one domain per shard, plus
    an acceptor thread). [stores] must have exactly [cfg.shards]
    elements — shard [i] owns [stores.(i)] exclusively; the caller
    initializes each one (e.g. the family's init entry). The server is
    serving when [start] returns. [replica_of] starts it in the
    read-only replica role (the string is the primary's address, for
    display only — the caller runs the {!Privagic_replication.Replica}
    client and feeds {!apply_put}/{!apply_del}); {!promote} flips it to
    primary.
    @raise Failure when the socket cannot be bound. *)
val start : ?replica_of:string -> config -> bindings -> store array -> t
(** The bound stores must hold no keys yet: the transaction layer's
    version tables and ordered indexes start empty and only advance
    through commit hooks, so keys pre-populated before [start] would be
    invisible to [scan], report version 0 via [getv], and fail the
    in-transaction del presence check. The known families' init entries
    all build empty tables. *)

val port : t -> int

(** Graceful drain: stop accepting, let every shard loop dispatch and
    flush every parsed request (a two-stage barrier guarantees no
    cross-shard handoff races the inbox close), close the inboxes
    (loops exit via the Msqueue drain protocol, so no queued request is
    lost), then drain the backends. Idempotent; safe to call from any
    thread — a [shutdown] verb routes here through a supervisor thread
    on the main domain. *)
val drain : t -> unit

(** Block until a drain (triggered by {!drain} or a [shutdown] verb)
    completes. *)
val wait : t -> unit

val is_draining : t -> bool

type stats = {
  s_uptime : float;
  s_conns_accepted : int;
  s_conns_open : int;
  s_ops : int;              (** executed data-path requests (all verbs) *)
  s_gets : int;
  s_sets : int;
  s_dels : int;
  s_hits : int;
  s_shed : int;             (** requests answered SERVER_BUSY *)
  s_bad : int;              (** protocol errors answered CLIENT_ERROR *)
  s_batches : int;          (** latch holds (execution chunks) *)
  s_coalesced : int;        (** duplicate gets served from a chunk *)
  s_depth : int array;      (** current per-shard cross-shard inbox depth *)
  s_latency : Tel.Metrics.pctiles;  (** dispatch->response, microseconds *)
  s_queue_wait : Tel.Metrics.pctiles;  (** dispatch->execution, microseconds *)
  s_role : string;          (** ["primary"] or ["replica:<addr>"] *)
  s_replicas : int;         (** live replica connections (as a primary) *)
  s_repl_lag_us : float;    (** most recent send->ack lag sample *)
  s_repl_seq : int;         (** commit-log head *)
  s_applied : int;          (** deltas applied (as a replica) *)
  s_fence_timeouts : int;   (** sync fences that hit their timeout *)
  s_getv : int;
  s_cas : int;
  s_cas_conflicts : int;    (** CAS guards that lost to an earlier writer *)
  s_txns : int;             (** txn ... exec requests executed *)
  s_txn_commits : int;      (** committed transactions (incl. single-op cas) *)
  s_txn_aborts : int;       (** transactions aborted by a CAS guard *)
  s_scans : int;
  s_scan_items : int;       (** total items returned by scans *)
  s_shards : int;
  s_xshard : int;           (** requests routed or committed across shards *)
  s_conns_rejected : int;   (** connections refused at {!fd_cap} *)
  s_fd_cap : int;
}

val stats : t -> stats

(** The [STAT k v] pairs of the protocol's [stats] verb. The historical
    fields keep their names and order; new fields append. *)
val stats_fields : t -> (string * string) list

(** The server's live metrics registry (lib/obs) — what the
    [stats metrics] verb exposes. Populated at {!start} with server
    counters/summaries, per-shard inbox depths, replication shipper
    gauges, and the shard-0 store's backend contribution. *)
val metrics_registry : t -> Privagic_obs.Registry.t

(** {1 Replication}

    A primary needs no calls here: the [repl] handshake registers
    replica connections with the server's shipper, [set]/[del] commits
    append to its delta log, and {!drain} flushes the log tail to every
    replica. The functions below are the replica side and introspection
    (DESIGN.md §8.10). *)

(** Apply one delta received from the primary: executes through the same
    entry path as a client [set]/[del], under the owning shard's latch,
    and mirrors the primary's seq into the local log. The replica
    client calls strictly in seq order, so the mirrored log stays dense
    even though deltas fan out across shards. Fails on a seq gap. *)
val apply_put :
  t -> seq:int -> key:int -> payload:string -> (unit, string) result

val apply_del : t -> seq:int -> key:int -> (unit, string) result

(** Leave the read-only replica role and accept client writes; the
    promoted server's mirrored log lets downstream replicas keep
    streaming from their positions. *)
val promote : t -> unit

val is_replica : t -> bool

(** ["primary"] or ["replica:<addr>"]. *)
val role_name : t -> string

(** The commit log — the merged monotone sequence every shard appends
    to under its latch (convergence oracles replay it, whole or
    filtered per shard). *)
val repl_log : t -> Privagic_replication.Log.t

(** The delta shipper (lag percentiles, seal counters). *)
val repl_hub : t -> Privagic_replication.Shipper.t

(** Wire-capture tap for the robust-safety monitor ({!Privagic_robust}):
    observes every response byte any server in the process writes to a
    client connection, before the socket write. [None] detaches. The
    secrecy trace property asserts that no live secret-colored value
    appears on a client connection unsealed. *)
val set_wire_tap : (string -> unit) option -> unit
