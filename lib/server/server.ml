(* The serving shell around the partitioned runtime. Threads, not domains:
   entry execution is serialized by [store_mu] (see the .mli — the
   programs' lock()/unlock() externs are cost models, and the parallel
   backend's entry interface resets per-request stacks globally), so the
   shell only needs concurrency for I/O, and systhreads interleave around
   the blocking syscalls just fine. The real parallelism lives inside each
   request, across the pool's per-partition domains.

   Thread roles and ownership:
   - acceptor: selects on the listen socket (with a timeout, so a drain is
     noticed — closing a socket another thread is blocked accepting on is
     not portable), hands sockets round-robin to connection workers;
   - connection workers: each owns a disjoint set of connections. Only the
     owner reads a connection or touches its pending-request queue; a
     self-pipe lets executors nudge the owner out of select;
   - lane executors: one per lane, popping work batches from that lane's
     bounded Msqueue and executing them against the store.

   Per-connection ordering: at most one request of a connection is in the
   lanes at a time ([c_in_flight]); the owner dispatches the next pending
   request only after the executor wrote the response and cleared the
   flag. Responses therefore come back in request order without any
   cross-lane sequencing. Locally-answered verbs (stats, protocol errors,
   SERVER_BUSY) are threaded through the same pending queue, so they
   cannot overtake a queued request either. *)

module Tel = Privagic_telemetry
module Msq = Privagic_runtime.Msqueue
module Parallel = Privagic_parallel.Parallel
module Repl = Privagic_replication
module Obs = Privagic_obs
module Txn = Privagic_txn.Txn
module Index = Privagic_txn.Index
open Privagic_vm

type store = {
  st_name : string;
  st_call : string -> Rvalue.t list -> (Rvalue.t, string) result;
  st_alloc : int -> int;
  st_write : int -> string -> unit;
  st_read : int -> int -> string;
  st_drain : unit -> unit;
  st_register_obs : Obs.Registry.t -> unit;
      (* backend gauges (steps, externs, lane phases, declassify counts)
         onto the server's registry *)
}

let store_of_heap heap =
  let write addr s =
    String.iteri
      (fun i c -> Heap.store heap (addr + i) 1 (Int64.of_int (Char.code c)))
      s
  in
  let read addr n =
    String.init n (fun i ->
        Char.chr (Int64.to_int (Heap.load heap (addr + i) 1) land 0xff))
  in
  (write, read)

let store_of_parallel p =
  let heap = (Parallel.exec p).Exec.heap in
  let st_write, st_read = store_of_heap heap in
  {
    st_name = "parallel";
    st_call =
      (fun name args ->
        match Parallel.call_entry p name args with
        | r -> Ok r.Parallel.value
        | exception Parallel.Error m -> Error m);
    st_alloc = (fun n -> Heap.alloc heap Heap.Unsafe n);
    st_write;
    st_read;
    st_drain = (fun () -> ignore (Parallel.shutdown p));
    st_register_obs = (fun reg -> Parallel.register_obs p reg);
  }

let store_of_pinterp (p : Pinterp.t) =
  let heap = p.Pinterp.exec.Exec.heap in
  let st_write, st_read = store_of_heap heap in
  {
    st_name = "simulated";
    st_call =
      (fun name args ->
        match Pinterp.call_entry p name args with
        | r -> Ok r.Pinterp.value
        | exception Pinterp.Error m -> Error m);
    st_alloc = (fun n -> Heap.alloc heap Heap.Unsafe n);
    st_write;
    st_read;
    st_drain = (fun () -> ());
    st_register_obs =
      (fun reg ->
        let ex = p.Pinterp.exec in
        let g = Obs.Registry.gauge reg in
        g ~help:"VM steps retired" "privagic_vm_steps_total" (fun () ->
            float_of_int ex.Exec.steps);
        g ~help:"extern dispatches" "privagic_vm_externs_total" (fun () ->
            float_of_int ex.Exec.externs);
        Obs.Registry.multi_gauge reg
          ~help:"declassification calls per color (shared extern path)"
          "privagic_declassify_total" (fun () ->
            Hashtbl.fold
              (fun color r acc -> ([ ("color", color) ], float_of_int !r) :: acc)
              ex.Exec.declass []
            |> List.sort compare));
  }

type bindings = {
  b_family : string;
  b_set : string;
  b_get : string;
  b_del : string option;
  b_init : string option;
  b_vcolor : string;
}

let known_families =
  [
    { b_family = "memcached"; b_set = "mc_set"; b_get = "mc_get";
      b_del = Some "mc_delete"; b_init = Some "mc_init"; b_vcolor = "U" };
    { b_family = "hashmap"; b_set = "hm_put"; b_get = "hm_get";
      b_del = None; b_init = None; b_vcolor = "U" };
    { b_family = "hashmap-2color"; b_set = "h2_put"; b_get = "h2_get";
      b_del = None; b_init = None; b_vcolor = "U" };
    { b_family = "treemap"; b_set = "tm_put"; b_get = "tm_get";
      b_del = None; b_init = None; b_vcolor = "U" };
    { b_family = "linked-list"; b_set = "ll_put"; b_get = "ll_get";
      b_del = None; b_init = None; b_vcolor = "U" };
  ]

(* The color under which stored values travel on the replication wire:
   the enclave the plan placed the store's globals in ("U" for a plain
   plan, whose store is unsafe memory anyway). When the plan spans two
   enclaves (hashmap-2color: keys blue, values red) the value bytes live
   in red, hence the preference. *)
let value_color (plan : Privagic_partition.Plan.t) =
  let named =
    List.filter_map
      (fun (_, c) ->
        match c with Privagic_pir.Color.Named n -> Some n | _ -> None)
      plan.global_placement
  in
  match named with
  | [] -> "U"
  | l -> if List.mem "red" l then "red" else List.hd l

let bindings_of_plan (plan : Privagic_partition.Plan.t) =
  let have name =
    List.exists
      (fun (e : Privagic_partition.Plan.entry_plan) -> e.ep_name = name)
      plan.entries
  in
  Option.map
    (fun b -> { b with b_vcolor = value_color plan })
    (List.find_opt (fun b -> have b.b_set && have b.b_get) known_families)

type policy = Block | Shed

type config = {
  host : string;
  port : int;
  lanes : int;
  queue_depth : int;
  policy : policy;
  max_batch : int;
  vsize : int;
  conn_workers : int;
  telemetry : Tel.Recorder.t;
  repl_window : int;
  repl_cluster : string;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    lanes = 2;
    queue_depth = 64;
    policy = Block;
    max_batch = 8;
    vsize = 32;
    conn_workers = 2;
    telemetry = Tel.Recorder.null;
    repl_window = 1024;
    repl_cluster = "privagic";
  }

(* ------------------------------------------------------------------ *)

(* What the owner worker dispatches, in arrival order. *)
type job = Exec of Protocol.request | Local of Protocol.response

type conn = {
  c_fd : Unix.file_descr;
  c_reader : Protocol.reader;
  c_pending : job Queue.t;         (* owner worker only *)
  c_wmu : Mutex.t;                 (* serializes writes to c_fd *)
  c_mu : Mutex.t;                  (* guards the three flags below *)
  mutable c_in_flight : bool;      (* a request of ours is in the lanes *)
  mutable c_dead : bool;           (* peer gone / write failed: discard *)
  mutable c_eof : bool;            (* stop reading; still flush pending *)
  mutable c_detached : bool;       (* fd handed to the shipper: forget it *)
  c_worker : int;
}

type work = { wk_conn : conn; wk_req : Protocol.request; wk_enq_at : float }

type cw = {
  cw_mu : Mutex.t;
  cw_incoming : conn Queue.t;      (* acceptor -> worker handoff *)
  cw_wake_r : Unix.file_descr;
  cw_wake_w : Unix.file_descr;
}

type role = Primary | Replica_of of string

type t = {
  cfg : config;
  bnd : bindings;
  store : store;
  listen_fd : Unix.file_descr;
  t_port : int;
  started_at : float;
  (* replication *)
  repl_log : Repl.Log.t;
  hub : Repl.Shipper.t;
  role_mu : Mutex.t;
  mutable t_role : role;
  n_applied : int Atomic.t;        (* deltas applied while a replica *)
  n_fence_timeouts : int Atomic.t; (* sync acks that timed out *)
  queues : work Msq.t array;
  depths : int Atomic.t array;
  lengths : (int, int) Hashtbl.t;  (* key -> stored length; store_mu *)
  txn : Txn.t;  (* versions + secondary indexes; mutated under store_mu *)
  vbuf : int;
  obuf : int;
  store_mu : Mutex.t;
  tel_mu : Mutex.t;                (* the recorder is not thread-safe *)
  lane_tracks : int array;
  cws : cw array;
  (* counters (Atomic: each is read/bumped from several threads) *)
  conns_accepted : int Atomic.t;
  conns_open : int Atomic.t;
  n_gets : int Atomic.t;
  n_sets : int Atomic.t;
  n_dels : int Atomic.t;
  n_hits : int Atomic.t;
  n_shed : int Atomic.t;
  n_bad : int Atomic.t;
  n_batches : int Atomic.t;
  n_coalesced : int Atomic.t;
  n_getv : int Atomic.t;
  n_cas : int Atomic.t;
  n_cas_conflicts : int Atomic.t;
  n_txns : int Atomic.t;
  n_txn_aborts : int Atomic.t;
  n_scans : int Atomic.t;
  m_mu : Mutex.t;
  h_latency : Tel.Metrics.histogram;
  h_qwait : Tel.Metrics.histogram;
  h_scan_len : Tel.Metrics.histogram; (* items returned per scan *)
  obs : Obs.Registry.t; (* live metrics, served via `stats metrics` *)
  (* lifecycle *)
  d_mu : Mutex.t;
  d_cv : Condition.t;
  mutable draining : bool;
  mutable drain_started : bool;
  mutable drained : bool;
  mutable acceptor : Thread.t option;
  mutable workers : Thread.t list;
  mutable executors : Thread.t list;
}

let now_us t = (Unix.gettimeofday () -. t.started_at) *. 1e6

let wake w =
  (* the pipe is non-blocking; a full pipe already guarantees a wakeup *)
  try ignore (Unix.write w.cw_wake_w (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EPIPE | EBADF), _, _) -> ()

let mark_dead c =
  Mutex.lock c.c_mu;
  c.c_dead <- true;
  Mutex.unlock c.c_mu

let is_dead c =
  Mutex.lock c.c_mu;
  let d = c.c_dead in
  Mutex.unlock c.c_mu;
  d

(* Wire-capture tap for the robust-safety monitor: every response byte the
   server puts on a client connection also goes here (process-wide). *)
let wire_tap : (string -> unit) option ref = ref None

let set_wire_tap f = wire_tap := f

(* Blocking full write on a non-blocking socket; marks the connection
   dead (instead of raising) when the peer is gone or stalled > 30 s. *)
let write_resp c resp =
  let s = Protocol.render resp in
  (match !wire_tap with None -> () | Some f -> f s);
  let b = Bytes.of_string s in
  Mutex.lock c.c_wmu;
  let deadline = Unix.gettimeofday () +. 30.0 in
  let rec go off =
    if off < Bytes.length b then
      match Unix.write c.c_fd b off (Bytes.length b - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
        if Unix.gettimeofday () > deadline then mark_dead c
        else begin
          (try ignore (Unix.select [] [ c.c_fd ] [] 0.25)
           with Unix.Unix_error _ -> ());
          go off
        end
      | exception Unix.Unix_error _ -> mark_dead c
  in
  if not (is_dead c) then go 0;
  Mutex.unlock c.c_wmu

(* ------------------------------------------------------------------ *)
(* execution: one batch, under the store mutex *)

let exec_set t key v =
  if String.length v > t.cfg.vsize then
    Protocol.Error_msg
      (Printf.sprintf "value exceeds program value size %d" t.cfg.vsize)
  else begin
    (* the program copies exactly vsize bytes: zero-pad the tail *)
    let padded =
      if String.length v = t.cfg.vsize then v
      else v ^ String.make (t.cfg.vsize - String.length v) '\000'
    in
    t.store.st_write t.vbuf padded;
    match
      t.store.st_call t.bnd.b_set
        [ Rvalue.Int (Int64.of_int key); Rvalue.Ptr t.vbuf ]
    with
    | Ok _ ->
      Hashtbl.replace t.lengths key (String.length v);
      Protocol.Stored
    | Error m -> Protocol.Error_msg ("exec: " ^ m)
  end

let exec_get t key =
  match
    t.store.st_call t.bnd.b_get
      [ Rvalue.Int (Int64.of_int key); Rvalue.Ptr t.obuf ]
  with
  | Ok v when Rvalue.truthy v ->
    let len =
      match Hashtbl.find_opt t.lengths key with
      | Some n -> n
      | None -> t.cfg.vsize
    in
    Protocol.Value (key, t.store.st_read t.obuf len)
  | Ok _ -> Protocol.Miss
  | Error m -> Protocol.Error_msg ("exec: " ^ m)

let exec_del t key =
  match t.bnd.b_del with
  | None ->
    Protocol.Error_msg
      (Printf.sprintf "del not supported by the %s program" t.bnd.b_family)
  | Some entry -> (
    match t.store.st_call entry [ Rvalue.Int (Int64.of_int key) ] with
    | Ok v when Rvalue.truthy v ->
      Hashtbl.remove t.lengths key;
      Protocol.Deleted
    | Ok _ -> Protocol.Not_found
    | Error m -> Protocol.Error_msg ("exec: " ^ m))

(* Commit choke points: every committed write — client set/del, replica
   apply, CAS, transaction — advances the txn layer's per-key versions
   and secondary indexes here, under the store mutex. Primaries and
   replicas run the same hooks, which is what makes replicas converge
   on versions and indexes too, not only on value bytes. *)
let commit_set t key v =
  match exec_set t key v with
  | Protocol.Stored ->
    Txn.note_put t.txn ~key ~value:v;
    Protocol.Stored
  | r -> r

let commit_del t key =
  match exec_del t key with
  | Protocol.Deleted ->
    Txn.note_del t.txn ~key;
    Protocol.Deleted
  | r -> r

(* The txn executor reads and writes through the store's own entry
   points (classify/declassify still mediate every value). Writes use
   the raw exec paths: [Txn.execute] runs the note hooks itself. *)
let txn_store_ops t =
  {
    Txn.o_get =
      (fun k ->
        match exec_get t k with
        | Protocol.Value (_, v) -> Ok (Some v)
        | Protocol.Miss -> Ok None
        | Protocol.Error_msg m -> Error m
        | _ -> Error "unexpected get response");
    o_set =
      (fun k v ->
        match exec_set t k v with
        | Protocol.Stored -> Ok ()
        | Protocol.Error_msg m -> Error m
        | _ -> Error "unexpected set response");
    o_del =
      (fun k ->
        match exec_del t k with
        | Protocol.Deleted -> Ok true
        | Protocol.Not_found -> Ok false
        | Protocol.Error_msg m -> Error m
        | _ -> Error "unexpected del response");
    (* applicability limits, so [Txn.execute] rejects a doomed write in
       its validate phase (the wire accepts values up to the frame
       limit, well past cfg.vsize) instead of failing mid-apply *)
    o_max_value = t.cfg.vsize;
    o_can_del = t.bnd.b_del <> None;
  }

(* ------------------------------------------------------------------ *)
(* replica-side application: a delta from the primary executes through
   the same entry paths a client request would, under the store mutex,
   and mirrors the primary's numbering into the local log — which is
   what lets a promoted replica serve downstream replicas (and its own
   convergence oracle) from the same stream positions. *)

let mirror t ~seq op =
  match Repl.Log.append_at t.repl_log ~seq op with
  | () ->
    Atomic.incr t.n_applied;
    Ok ()
  | exception Invalid_argument m -> Error m

let apply_put t ~seq ~key ~payload =
  Mutex.lock t.store_mu;
  let r =
    match commit_set t key payload with
    | Protocol.Stored ->
      mirror t ~seq
        (Repl.Delta.Put { key; color = t.bnd.b_vcolor; payload })
    | Protocol.Error_msg m -> Error m
    | _ -> Error "unexpected response applying put"
  in
  Mutex.unlock t.store_mu;
  r

let apply_del t ~seq ~key =
  Mutex.lock t.store_mu;
  let r =
    match commit_del t key with
    (* Not_found still mirrors: the primary numbered this delta, and the
       replica's log must stay dense to keep stream positions aligned *)
    | Protocol.Deleted | Protocol.Not_found ->
      mirror t ~seq (Repl.Delta.Del { key })
    | Protocol.Error_msg m -> Error m
    | _ -> Error "unexpected response applying del"
  in
  Mutex.unlock t.store_mu;
  r

let promote t =
  Mutex.lock t.role_mu;
  t.t_role <- Primary;
  Mutex.unlock t.role_mu

let role_name t =
  Mutex.lock t.role_mu;
  let r =
    match t.t_role with
    | Primary -> "primary"
    | Replica_of a -> "replica:" ^ a
  in
  Mutex.unlock t.role_mu;
  r

let is_replica t =
  Mutex.lock t.role_mu;
  let r = match t.t_role with Primary -> false | Replica_of _ -> true in
  Mutex.unlock t.role_mu;
  r

let repl_log t = t.repl_log
let repl_hub t = t.hub

(* Execute a batch. Duplicate gets inside the batch are served from a
   key cache — exact, because the whole batch runs atomically under the
   store mutex and sets/dels of the batch refresh the cache in order. *)
let exec_batch t lane (batch : work list) =
  let cache : (int, Protocol.response) Hashtbl.t = Hashtbl.create 8 in
  let track = t.lane_tracks.(lane) in
  let tel_span name f =
    if t.cfg.telemetry == Tel.Recorder.null then f ()
    else begin
      Mutex.lock t.tel_mu;
      Tel.Recorder.record t.cfg.telemetry ~at:(now_us t) ~track ~name
        Tel.Event.Req_begin;
      Mutex.unlock t.tel_mu;
      let r = f () in
      Mutex.lock t.tel_mu;
      Tel.Recorder.record t.cfg.telemetry ~at:(now_us t) ~track ~name
        Tel.Event.Req_end;
      Mutex.unlock t.tel_mu;
      r
    end
  in
  (* highest delta seq committed by this batch; 0 when it wrote nothing *)
  let max_seq = ref 0 in
  let committed op =
    let seq = Repl.Log.append t.repl_log op in
    if seq > !max_seq then max_seq := seq
  in
  (* a committed transaction's writes form one contiguous run in the
     log — the atomic-commit delta batch of the txn layer *)
  let commit_writes writes =
    List.iter
      (fun w ->
        match w with
        | Txn.W_put { w_key; w_value } ->
          committed
            (Repl.Delta.Put
               { key = w_key; color = t.bnd.b_vcolor; payload = w_value })
        | Txn.W_del { w_key } -> committed (Repl.Delta.Del { key = w_key }))
      writes
  in
  Mutex.lock t.store_mu;
  let responses =
    List.map
      (fun wk ->
        let started = now_us t in
        Mutex.lock t.m_mu;
        Tel.Metrics.observe t.h_qwait (started -. wk.wk_enq_at);
        Mutex.unlock t.m_mu;
        let resp =
          match wk.wk_req with
          | Protocol.Get k -> (
            Atomic.incr t.n_gets;
            match Hashtbl.find_opt cache k with
            | Some r ->
              Atomic.incr t.n_coalesced;
              (match r with
              | Protocol.Value _ -> Atomic.incr t.n_hits
              | _ -> ());
              r
            | None ->
              let r = tel_span "get" (fun () -> exec_get t k) in
              (match r with
              | Protocol.Value _ -> Atomic.incr t.n_hits
              | _ -> ());
              Hashtbl.replace cache k r;
              r)
          | Protocol.Set (k, v) ->
            Atomic.incr t.n_sets;
            let r = tel_span "set" (fun () -> commit_set t k v) in
            (match r with
            | Protocol.Stored ->
              committed
                (Repl.Delta.Put
                   { key = k; color = t.bnd.b_vcolor; payload = v });
              Hashtbl.replace cache k (Protocol.Value (k, v))
            | _ -> Hashtbl.remove cache k);
            r
          | Protocol.Del k ->
            Atomic.incr t.n_dels;
            let r = tel_span "del" (fun () -> commit_del t k) in
            (match r with
            | Protocol.Deleted ->
              (* Not_found has no visible effect, so it ships no delta *)
              committed (Repl.Delta.Del { key = k });
              Hashtbl.replace cache k Protocol.Miss
            | Protocol.Not_found -> Hashtbl.replace cache k Protocol.Miss
            | _ -> Hashtbl.remove cache k);
            r
          | Protocol.Getv k -> (
            Atomic.incr t.n_getv;
            (* version first: both are read under the same mutex hold *)
            let ver = Txn.version t.txn k in
            match tel_span "getv" (fun () -> exec_get t k) with
            | Protocol.Value (_, v) ->
              Atomic.incr t.n_hits;
              Protocol.Version { v_key = k; v_ver = ver; v_val = Some v }
            | Protocol.Miss ->
              Protocol.Version { v_key = k; v_ver = ver; v_val = None }
            | r -> r)
          | Protocol.Cas { c_key; c_ver; c_val } -> (
            Atomic.incr t.n_cas;
            let r =
              tel_span "cas" (fun () ->
                  Txn.execute t.txn (txn_store_ops t)
                    [ Txn.T_cas (c_key, c_ver, c_val) ])
            in
            match r with
            | Txn.Committed (_, writes) ->
              commit_writes writes;
              Hashtbl.replace cache c_key (Protocol.Value (c_key, c_val));
              Protocol.Stored
            | Txn.Aborted { a_expected; a_found; _ } ->
              Atomic.incr t.n_cas_conflicts;
              if a_found = 0 && a_expected > 0 then Protocol.Not_found
              else Protocol.Cas_conflict a_found
            | Txn.Failed { f_msg; f_applied } ->
              (* any applied prefix is committed state: ship it, or
                 replicas diverge from the primary's versions *)
              commit_writes f_applied;
              List.iter
                (fun w ->
                  Hashtbl.remove cache
                    (match w with
                    | Txn.W_put { w_key; _ } | Txn.W_del { w_key } -> w_key))
                f_applied;
              Protocol.Error_msg ("exec: " ^ f_msg))
          | Protocol.Txn ops -> (
            Atomic.incr t.n_txns;
            let r =
              tel_span "txn" (fun () ->
                  Txn.execute t.txn (txn_store_ops t) ops)
            in
            match r with
            | Txn.Committed (results, writes) ->
              commit_writes writes;
              List.iter
                (fun w ->
                  match w with
                  | Txn.W_put { w_key; w_value } ->
                    Hashtbl.replace cache w_key
                      (Protocol.Value (w_key, w_value))
                  | Txn.W_del { w_key } ->
                    Hashtbl.replace cache w_key Protocol.Miss)
                writes;
              Protocol.Txn_reply results
            | Txn.Aborted { a_key; a_expected; a_found } ->
              Atomic.incr t.n_txn_aborts;
              Protocol.Txn_abort
                { ta_key = a_key; ta_expected = a_expected; ta_found = a_found }
            | Txn.Failed { f_msg; f_applied } ->
              (* any applied prefix is committed state: ship it, or
                 replicas diverge from the primary's versions *)
              commit_writes f_applied;
              List.iter
                (fun w ->
                  Hashtbl.remove cache
                    (match w with
                    | Txn.W_put { w_key; _ } | Txn.W_del { w_key } -> w_key))
                f_applied;
              Protocol.Error_msg ("exec: " ^ f_msg))
          | Protocol.Scan { sc_start; sc_stop; sc_limit } ->
            Atomic.incr t.n_scans;
            let items =
              tel_span "scan" (fun () ->
                  Txn.scan t.txn ~start:sc_start ~stop:sc_stop ~limit:sc_limit)
            in
            Mutex.lock t.m_mu;
            Tel.Metrics.observe t.h_scan_len (float_of_int (List.length items));
            Mutex.unlock t.m_mu;
            Protocol.Scan_reply
              (List.map
                 (fun (e : Index.entry) ->
                   (* [e_value] is populated only for color "U": a
                      secret-colored value leaves as key+version alone *)
                   {
                     Protocol.si_key = e.Index.e_key;
                     si_ver = e.Index.e_version;
                     si_val = e.Index.e_value;
                   })
                 items)
          | Protocol.Stats | Protocol.Stats_metrics | Protocol.Quit
          | Protocol.Shutdown | Protocol.Repl _ ->
            (* never enqueued; the owner answers these locally *)
            Protocol.Error_msg "internal: local verb in lane queue"
        in
        (wk, resp))
      batch
  in
  Mutex.unlock t.store_mu;
  (* Sync-replication fence: hold this batch's responses until every
     live sync replica acknowledged its last commit — that is what gives
     clients read-your-writes on replica reads. Waiting happens outside
     the store mutex, so other lanes keep executing; a wedged replica
     degrades to async after the timeout (counted, and it stops gating
     once its connection dies). *)
  if !max_seq > 0 && Repl.Shipper.sync_connected t.hub > 0 then
    if not (Repl.Shipper.wait_synced t.hub ~seq:!max_seq ~timeout_s:5.0) then
      Atomic.incr t.n_fence_timeouts;
  (* Responses leave after the mutex: a stalled client can delay its
     lane's writes, never the store. *)
  List.iter
    (fun (wk, resp) ->
      let c = wk.wk_conn in
      write_resp c resp;
      Mutex.lock t.m_mu;
      Tel.Metrics.observe t.h_latency (now_us t -. wk.wk_enq_at);
      Mutex.unlock t.m_mu;
      Mutex.lock c.c_mu;
      c.c_in_flight <- false;
      Mutex.unlock c.c_mu;
      wake t.cws.(c.c_worker))
    responses

let executor_loop t lane =
  let q = t.queues.(lane) in
  let rec loop () =
    match Msq.pop_or_closed q ~idle:(fun () -> Unix.sleepf 0.0005) with
    | None -> () (* closed and drained: exit *)
    | Some first ->
      Atomic.decr t.depths.(lane);
      let rec more acc n =
        if n >= t.cfg.max_batch then List.rev acc
        else
          match Msq.pop q with
          | Some w ->
            Atomic.decr t.depths.(lane);
            more (w :: acc) (n + 1)
          | None -> List.rev acc
      in
      let batch = more [ first ] 1 in
      Atomic.incr t.n_batches;
      exec_batch t lane batch;
      loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* connection workers *)

let lane_of t key = key mod t.cfg.lanes

(* Enqueue one request onto its lane, honoring the backpressure policy.
   Returns [false] when the request was shed instead. *)
let enqueue t wk =
  let lane = match wk.wk_req with
    | Protocol.Get k | Protocol.Set (k, _) | Protocol.Del k
    | Protocol.Getv k
    | Protocol.Cas { c_key = k; _ }
    | Protocol.Scan { sc_start = k; _ } ->
      lane_of t k
    | Protocol.Txn (op :: _) -> (
      (* route by the first key; execution is serialized by store_mu
         anyway, this only spreads queueing across lanes *)
      match op with
      | Protocol.T_get k | Protocol.T_set (k, _) | Protocol.T_del k
      | Protocol.T_cas (k, _, _) ->
        lane_of t k)
    | _ -> 0
  in
  let d = t.depths.(lane) in
  let rec reserve () =
    let cur = Atomic.get d in
    if cur < t.cfg.queue_depth then
      if Atomic.compare_and_set d cur (cur + 1) then true else reserve ()
    else
      match t.cfg.policy with
      | Shed -> false
      | Block ->
        (* producer-side backpressure: stall this worker (and so its
           connections) until the executor catches up *)
        Unix.sleepf 0.0005;
        reserve ()
  in
  if reserve () then begin
    Msq.push t.queues.(lane) wk;
    true
  end
  else false

(* [stats_fields] and [drain] are defined at the end of the file but
   needed by [dispatch]; tied through refs to keep the file in reading
   order instead of one giant [let rec]. *)
let stats_fields_ref : (t -> (string * string) list) ref = ref (fun _ -> [])
let drain_ref : (t -> unit) ref = ref (fun _ -> ())

(* Dispatch the head of a connection's pending queue if allowed. The
   caller is the owner worker. Returns [true] when the connection can be
   closed now (implies nothing of ours is in the lanes). *)
let rec dispatch t c =
  Mutex.lock c.c_mu;
  let busy = c.c_in_flight and dead = c.c_dead in
  Mutex.unlock c.c_mu;
  if dead then begin
    (* discard unanswerable work; close once the executor let go *)
    Queue.clear c.c_pending;
    not busy
  end
  else if busy || Queue.is_empty c.c_pending then false
  else
    match Queue.pop c.c_pending with
    | Local resp ->
      write_resp c resp;
      dispatch t c
    | Exec req -> (
      match req with
      | Protocol.Stats ->
        write_resp c (Protocol.Stats_reply (!stats_fields_ref t));
        dispatch t c
      | Protocol.Stats_metrics ->
        write_resp c (Protocol.Metrics_reply (Obs.Registry.expose t.obs));
        dispatch t c
      | Protocol.Quit -> true
      | Protocol.Shutdown ->
        write_resp c Protocol.Ok_msg;
        (* drain joins this very worker: do it from a fresh thread *)
        ignore (Thread.create (fun () -> !drain_ref t) ());
        dispatch t c
      | Protocol.Repl { r_sync; r_from } ->
        (* replication handshake: this connection leaves the request
           loop for good — the shipper owns the fd from here on. The
           replica sends nothing between its hello and the first frames,
           so the parse buffer is empty at the handoff. *)
        Queue.clear c.c_pending;
        Mutex.lock c.c_mu;
        c.c_detached <- true;
        Mutex.unlock c.c_mu;
        Repl.Shipper.register t.hub c.c_fd ~sync:r_sync ~from_seq:r_from;
        false
      | (Protocol.Set _ | Protocol.Del _ | Protocol.Cas _) when is_replica t ->
        (* replicas apply the primary's stream, never client writes *)
        write_resp c (Protocol.Error_msg "read-only replica");
        dispatch t c
      | Protocol.Txn ops
        when is_replica t
             && List.exists
                  (function Protocol.T_get _ -> false | _ -> true)
                  ops ->
        (* read-only transactions are fine on a replica; writes are not *)
        write_resp c (Protocol.Error_msg "read-only replica");
        dispatch t c
      | Protocol.Get _ | Protocol.Set _ | Protocol.Del _ | Protocol.Getv _
      | Protocol.Cas _ | Protocol.Scan _ | Protocol.Txn _ ->
        let wk = { wk_conn = c; wk_req = req; wk_enq_at = now_us t } in
        Mutex.lock c.c_mu;
        c.c_in_flight <- true;
        Mutex.unlock c.c_mu;
        if enqueue t wk then false
        else begin
          Mutex.lock c.c_mu;
          c.c_in_flight <- false;
          Mutex.unlock c.c_mu;
          Atomic.incr t.n_shed;
          write_resp c Protocol.Busy;
          dispatch t c
        end)

let close_conn t c =
  (try Unix.close c.c_fd with Unix.Unix_error _ -> ());
  Atomic.decr t.conns_open

let worker_loop t i =
  let w = t.cws.(i) in
  let buf = Bytes.create 16384 in
  let conns = ref [] in
  let running = ref true in
  while !running do
    (* adopt newly accepted connections *)
    Mutex.lock w.cw_mu;
    Queue.iter (fun c -> conns := c :: !conns) w.cw_incoming;
    Queue.clear w.cw_incoming;
    Mutex.unlock w.cw_mu;
    let draining = t.draining in
    let readable_of c =
      Mutex.lock c.c_mu;
      let dead = c.c_dead in
      Mutex.unlock c.c_mu;
      (not dead) && (not c.c_eof) && not draining
    in
    let rd_fds =
      w.cw_wake_r :: List.filter_map
        (fun c -> if readable_of c then Some c.c_fd else None)
        !conns
    in
    (match Unix.select rd_fds [] [] 0.05 with
    | readable, _, _ ->
      if List.mem w.cw_wake_r readable then
        (try ignore (Unix.read w.cw_wake_r buf 0 (Bytes.length buf))
         with Unix.Unix_error _ -> ());
      List.iter
        (fun c ->
          if List.mem c.c_fd readable then
            match Unix.read c.c_fd buf 0 (Bytes.length buf) with
            | 0 -> c.c_eof <- true
            | n ->
              List.iter
                (fun item ->
                  match item with
                  | `Req r -> Queue.push (Exec r) c.c_pending
                  | `Bad m ->
                    Atomic.incr t.n_bad;
                    Queue.push (Local (Protocol.Error_msg m)) c.c_pending)
                (Protocol.feed c.c_reader buf n)
            | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
            | exception Unix.Unix_error _ -> mark_dead c)
        !conns
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | exception Unix.Unix_error (EBADF, _, _) ->
      (* a raced fd: drop connections that died under us *)
      List.iter
        (fun c ->
          match Unix.fstat c.c_fd with
          | _ -> ()
          | exception Unix.Unix_error _ -> mark_dead c)
        !conns);
    (* dispatch, then sweep closable connections *)
    conns :=
      List.filter
        (fun c ->
          let close_now = dispatch t c in
          let detached =
            Mutex.lock c.c_mu;
            let d = c.c_detached in
            Mutex.unlock c.c_mu;
            d
          in
          if detached then begin
            (* the shipper owns the fd now; it is no longer a client *)
            Atomic.decr t.conns_open;
            false
          end
          else
          let flushed =
            Queue.is_empty c.c_pending
            &&
            (Mutex.lock c.c_mu;
             let f = not c.c_in_flight in
             Mutex.unlock c.c_mu;
             f)
          in
          if close_now || (c.c_eof && flushed) then begin
            (* never close under an executor: it still holds the fd.
               [close_now] implies [not in_flight] (dispatch only returns
               it from a non-busy state), as does [flushed]. *)
            close_conn t c;
            false
          end
          else true)
        !conns;
    if draining then begin
      (* stopped reading; exit once every adopted connection is flushed *)
      let all_flushed =
        (* strict: even a dead connection's executor must let go before
           the worker exits, or we would close an fd it still holds *)
        List.for_all
          (fun c ->
            Mutex.lock c.c_mu;
            let f = not c.c_in_flight in
            Mutex.unlock c.c_mu;
            f && Queue.is_empty c.c_pending)
          !conns
      in
      Mutex.lock w.cw_mu;
      let no_incoming = Queue.is_empty w.cw_incoming in
      Mutex.unlock w.cw_mu;
      if all_flushed && no_incoming then begin
        List.iter (close_conn t) !conns;
        conns := [];
        running := false
      end
    end
  done

(* ------------------------------------------------------------------ *)
(* acceptor *)

let acceptor_loop t =
  let next = ref 0 in
  while not t.draining do
    match Unix.select [ t.listen_fd ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
      match Unix.accept t.listen_fd with
      | fd, _ ->
        Unix.set_nonblock fd;
        (try Unix.setsockopt fd Unix.TCP_NODELAY true
         with Unix.Unix_error _ -> ());
        let i = !next mod t.cfg.conn_workers in
        next := !next + 1;
        let c =
          {
            c_fd = fd;
            c_reader = Protocol.reader ();
            c_pending = Queue.create ();
            c_wmu = Mutex.create ();
            c_mu = Mutex.create ();
            c_in_flight = false;
            c_dead = false;
            c_eof = false;
            c_detached = false;
            c_worker = i;
          }
        in
        Atomic.incr t.conns_accepted;
        Atomic.incr t.conns_open;
        let w = t.cws.(i) in
        Mutex.lock w.cw_mu;
        Queue.push c w.cw_incoming;
        Mutex.unlock w.cw_mu;
        wake w
      | exception Unix.Unix_error _ -> ())
    | exception Unix.Unix_error _ -> ()
  done;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ())

(* ------------------------------------------------------------------ *)
(* lifecycle *)

let start ?replica_of cfg bnd store =
  if cfg.lanes < 1 then invalid_arg "Server.start: lanes must be positive";
  if cfg.conn_workers < 1 then
    invalid_arg "Server.start: conn_workers must be positive";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     Unix.bind listen_fd
       (Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port));
     Unix.listen listen_fd 128
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     failwith
       (Printf.sprintf "cannot bind %s:%d (%s)" cfg.host cfg.port
          (Printexc.to_string e)));
  let t_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> cfg.port
  in
  let metrics = Tel.Metrics.create () in
  let lane_tracks =
    Array.init cfg.lanes (fun i ->
        if cfg.telemetry == Tel.Recorder.null then 0
        else
          Tel.Recorder.fresh_track cfg.telemetry (Printf.sprintf "srv/lane%d" i))
  in
  let started_at = Unix.gettimeofday () in
  let tel_mu = Mutex.create () in
  (* the shipper threads record their sends on a track of their own *)
  let repl_span =
    if cfg.telemetry == Tel.Recorder.null then fun _ f -> f ()
    else begin
      let track = Tel.Recorder.fresh_track cfg.telemetry "srv/repl" in
      let record name ev =
        Mutex.lock tel_mu;
        Tel.Recorder.record cfg.telemetry
          ~at:((Unix.gettimeofday () -. started_at) *. 1e6)
          ~track ~name ev;
        Mutex.unlock tel_mu
      in
      fun name f ->
        record name Tel.Event.Req_begin;
        f ();
        record name Tel.Event.Req_end
    end
  in
  let repl_log = Repl.Log.create () in
  let hub =
    Repl.Shipper.create ~window:cfg.repl_window ~cluster:cfg.repl_cluster
      ~span:repl_span ~log:repl_log ()
  in
  let t =
    {
      cfg;
      bnd;
      store;
      listen_fd;
      t_port;
      started_at;
      repl_log;
      hub;
      role_mu = Mutex.create ();
      t_role =
        (match replica_of with
        | Some addr -> Replica_of addr
        | None -> Primary);
      n_applied = Atomic.make 0;
      n_fence_timeouts = Atomic.make 0;
      queues = Array.init cfg.lanes (fun _ -> Msq.create ());
      depths = Array.init cfg.lanes (fun _ -> Atomic.make 0);
      lengths = Hashtbl.create 1024;
      (* contract (see Txn.create): the bound store must be empty when
         the server starts — there is no enumeration entry point to
         backfill versions/indexes from, so a program that pre-populates
         its table before [start] would serve those keys through
         get/set but leave them invisible to scan/getv/txn-del. The
         known families' init entries all build empty tables. *)
      txn = Txn.create ~lanes:cfg.lanes ~value_color:bnd.b_vcolor ();
      vbuf = store.st_alloc (max 1 cfg.vsize);
      obuf = store.st_alloc (max 1 cfg.vsize);
      store_mu = Mutex.create ();
      tel_mu;
      lane_tracks;
      cws =
        Array.init cfg.conn_workers (fun _ ->
            let r, w = Unix.pipe () in
            Unix.set_nonblock r;
            Unix.set_nonblock w;
            {
              cw_mu = Mutex.create ();
              cw_incoming = Queue.create ();
              cw_wake_r = r;
              cw_wake_w = w;
            });
      conns_accepted = Atomic.make 0;
      conns_open = Atomic.make 0;
      n_gets = Atomic.make 0;
      n_sets = Atomic.make 0;
      n_dels = Atomic.make 0;
      n_hits = Atomic.make 0;
      n_shed = Atomic.make 0;
      n_bad = Atomic.make 0;
      n_batches = Atomic.make 0;
      n_coalesced = Atomic.make 0;
      n_getv = Atomic.make 0;
      n_cas = Atomic.make 0;
      n_cas_conflicts = Atomic.make 0;
      n_txns = Atomic.make 0;
      n_txn_aborts = Atomic.make 0;
      n_scans = Atomic.make 0;
      m_mu = Mutex.create ();
      h_latency = Tel.Metrics.histogram metrics "server latency (us)";
      h_qwait = Tel.Metrics.histogram metrics "queue wait (us)";
      h_scan_len = Tel.Metrics.histogram metrics "scan length (items)";
      obs = Obs.Registry.create ();
      d_mu = Mutex.create ();
      d_cv = Condition.create ();
      draining = false;
      drain_started = false;
      drained = false;
      acceptor = None;
      workers = [];
      executors = [];
    }
  in
  (* live metrics (lib/obs): server counters and summaries, per-lane
     queue depths, replication shipper gauges, then whatever the backend
     store contributes (pool lane phases, steps, declassify counts).
     Registered before the first thread starts so `stats metrics` is
     complete from the first request on. *)
  (let reg = t.obs in
   let ac name help (a : int Atomic.t) =
     Obs.Registry.gauge reg ~help name (fun () -> float_of_int (Atomic.get a))
   in
   Obs.Registry.multi_gauge reg ~help:"requests served, by operation"
     "privagic_server_ops_total" (fun () ->
       [
         ([ ("op", "get") ], float_of_int (Atomic.get t.n_gets));
         ([ ("op", "set") ], float_of_int (Atomic.get t.n_sets));
         ([ ("op", "del") ], float_of_int (Atomic.get t.n_dels));
         ([ ("op", "getv") ], float_of_int (Atomic.get t.n_getv));
         ([ ("op", "cas") ], float_of_int (Atomic.get t.n_cas));
         ([ ("op", "scan") ], float_of_int (Atomic.get t.n_scans));
         ([ ("op", "txn") ], float_of_int (Atomic.get t.n_txns));
       ]);
   ac "privagic_server_hits_total" "get requests answered with a value"
     t.n_hits;
   ac "privagic_server_shed_total" "requests shed above the high-water mark"
     t.n_shed;
   ac "privagic_server_protocol_errors_total" "malformed request lines"
     t.n_bad;
   ac "privagic_server_batches_total" "executor batches" t.n_batches;
   ac "privagic_server_coalesced_total" "gets coalesced inside a batch"
     t.n_coalesced;
   ac "privagic_server_conns_accepted_total" "connections accepted"
     t.conns_accepted;
   ac "privagic_server_conns_open" "connections currently open" t.conns_open;
   ac "privagic_server_repl_applied_total" "deltas applied while a replica"
     t.n_applied;
   ac "privagic_server_repl_fence_timeouts_total" "sync acks that timed out"
     t.n_fence_timeouts;
   ac "privagic_server_cas_conflicts_total"
     "CAS guards that lost to an earlier writer" t.n_cas_conflicts;
   Obs.Registry.gauge reg
     ~help:"transactions committed (including single-op cas)"
     "privagic_txn_commits_total" (fun () ->
       float_of_int (Txn.commits t.txn));
   Obs.Registry.gauge reg ~help:"transactions aborted by a CAS guard"
     "privagic_txn_aborts_total" (fun () -> float_of_int (Txn.aborts t.txn));
   Obs.Registry.summary reg ~help:"items returned per range scan"
     "privagic_scan_items" (fun () ->
       Mutex.lock t.m_mu;
       let p = Tel.Metrics.pctiles t.h_scan_len in
       Mutex.unlock t.m_mu;
       p);
   Obs.Registry.multi_gauge reg ~help:"pending requests per executor lane"
     "privagic_server_queue_depth" (fun () ->
       Array.to_list
         (Array.mapi
            (fun i d ->
              ([ ("lane", string_of_int i) ], float_of_int (Atomic.get d)))
            t.depths));
   Obs.Registry.gauge reg ~help:"replication log head sequence"
     "privagic_repl_seq" (fun () -> float_of_int (Repl.Log.head t.repl_log));
   Obs.Registry.summary reg ~help:"request latency (microseconds)"
     "privagic_server_latency_us" (fun () ->
       Mutex.lock t.m_mu;
       let p = Tel.Metrics.pctiles t.h_latency in
       Mutex.unlock t.m_mu;
       p);
   Obs.Registry.summary reg ~help:"queue wait (microseconds)"
     "privagic_server_queue_wait_us" (fun () ->
       Mutex.lock t.m_mu;
       let p = Tel.Metrics.pctiles t.h_qwait in
       Mutex.unlock t.m_mu;
       p);
   Repl.Shipper.register_obs t.hub reg;
   store.st_register_obs reg);
  t.executors <-
    List.init cfg.lanes (fun i -> Thread.create (fun () -> executor_loop t i) ());
  t.workers <-
    List.init cfg.conn_workers (fun i ->
        Thread.create (fun () -> worker_loop t i) ());
  t.acceptor <- Some (Thread.create (fun () -> acceptor_loop t) ());
  t

let port t = t.t_port
let metrics_registry t = t.obs
let is_draining t = t.draining

let drain t =
  Mutex.lock t.d_mu;
  if t.drain_started then begin
    while not t.drained do
      Condition.wait t.d_cv t.d_mu
    done;
    Mutex.unlock t.d_mu
  end
  else begin
    t.drain_started <- true;
    t.draining <- true;
    Mutex.unlock t.d_mu;
    (match t.acceptor with Some th -> Thread.join th | None -> ());
    Array.iter wake t.cws;
    List.iter Thread.join t.workers;
    (* every parsed request is now in the lanes or answered; close the
       queues so executors exit once they observe empty-after-close *)
    Array.iter Msq.close t.queues;
    List.iter Thread.join t.executors;
    (* the log is final now: flush its tail to every replica and wait
       (bounded) for their acks before tearing the backend down *)
    Repl.Shipper.drain t.hub ~timeout_s:5.0;
    t.store.st_drain ();
    Array.iter
      (fun w ->
        try Unix.close w.cw_wake_r; Unix.close w.cw_wake_w
        with Unix.Unix_error _ -> ())
      t.cws;
    Mutex.lock t.d_mu;
    t.drained <- true;
    Condition.broadcast t.d_cv;
    Mutex.unlock t.d_mu
  end

let wait t =
  Mutex.lock t.d_mu;
  while not t.drained do
    Condition.wait t.d_cv t.d_mu
  done;
  Mutex.unlock t.d_mu

(* ------------------------------------------------------------------ *)
(* stats *)

type stats = {
  s_uptime : float;
  s_conns_accepted : int;
  s_conns_open : int;
  s_ops : int;
  s_gets : int;
  s_sets : int;
  s_dels : int;
  s_hits : int;
  s_shed : int;
  s_bad : int;
  s_batches : int;
  s_coalesced : int;
  s_depth : int array;
  s_latency : Tel.Metrics.pctiles;
  s_queue_wait : Tel.Metrics.pctiles;
  s_role : string;
  s_replicas : int;
  s_repl_lag_us : float;
  s_repl_seq : int;
  s_applied : int;
  s_fence_timeouts : int;
  s_getv : int;
  s_cas : int;
  s_cas_conflicts : int;
  s_txns : int;
  s_txn_commits : int;
  s_txn_aborts : int;
  s_scans : int;
  s_scan_items : int;
}

let stats t =
  let g = Atomic.get in
  Mutex.lock t.m_mu;
  let lat = Tel.Metrics.pctiles t.h_latency in
  let qw = Tel.Metrics.pctiles t.h_qwait in
  Mutex.unlock t.m_mu;
  {
    s_uptime = Unix.gettimeofday () -. t.started_at;
    s_conns_accepted = g t.conns_accepted;
    s_conns_open = g t.conns_open;
    s_ops =
      g t.n_gets + g t.n_sets + g t.n_dels + g t.n_getv + g t.n_cas
      + g t.n_txns + g t.n_scans;
    s_gets = g t.n_gets;
    s_sets = g t.n_sets;
    s_dels = g t.n_dels;
    s_hits = g t.n_hits;
    s_shed = g t.n_shed;
    s_bad = g t.n_bad;
    s_batches = g t.n_batches;
    s_coalesced = g t.n_coalesced;
    s_depth = Array.map Atomic.get t.depths;
    s_latency = lat;
    s_queue_wait = qw;
    s_role = role_name t;
    s_replicas = Repl.Shipper.connected t.hub;
    s_repl_lag_us = Repl.Shipper.last_lag_us t.hub;
    s_repl_seq = Repl.Log.head t.repl_log;
    s_applied = g t.n_applied;
    s_fence_timeouts = g t.n_fence_timeouts;
    s_getv = g t.n_getv;
    s_cas = g t.n_cas;
    s_cas_conflicts = g t.n_cas_conflicts;
    s_txns = g t.n_txns;
    s_txn_commits = Txn.commits t.txn;
    s_txn_aborts = Txn.aborts t.txn;
    s_scans = g t.n_scans;
    s_scan_items = Txn.scan_items t.txn;
  }

let stats_fields t =
  let s = stats t in
  let f = Printf.sprintf "%.1f" in
  [
    ("family", t.bnd.b_family);
    ("backend", t.store.st_name);
    ("uptime_s", f s.s_uptime);
    ("lanes", string_of_int t.cfg.lanes);
    ("conns_accepted", string_of_int s.s_conns_accepted);
    ("conns_open", string_of_int s.s_conns_open);
    ("ops", string_of_int s.s_ops);
    ("gets", string_of_int s.s_gets);
    ("sets", string_of_int s.s_sets);
    ("dels", string_of_int s.s_dels);
    ("hits", string_of_int s.s_hits);
    ("shed", string_of_int s.s_shed);
    ("protocol_errors", string_of_int s.s_bad);
    ("batches", string_of_int s.s_batches);
    ("coalesced_gets", string_of_int s.s_coalesced);
    ("queue_depth",
     String.concat "," (Array.to_list (Array.map string_of_int s.s_depth)));
    ("latency_us_p50", f s.s_latency.Tel.Metrics.p50);
    ("latency_us_p95", f s.s_latency.Tel.Metrics.p95);
    ("latency_us_p99", f s.s_latency.Tel.Metrics.p99);
    ("queue_wait_us_p50", f s.s_queue_wait.Tel.Metrics.p50);
    (* replication fields append after the historical ones so existing
       parsers that read positionally keep working *)
    ("role", s.s_role);
    ("replicas_connected", string_of_int s.s_replicas);
    ("replication_lag_us", f s.s_repl_lag_us);
    ("repl_seq", string_of_int s.s_repl_seq);
    ("repl_applied", string_of_int s.s_applied);
    ("repl_fence_timeouts", string_of_int s.s_fence_timeouts);
    ("latency_us_p999", f s.s_latency.Tel.Metrics.p999);
    ("latency_us_max", f s.s_latency.Tel.Metrics.p_max);
    (* txn/index fields append after everything historical, same
       positional-compatibility rule as above *)
    ("getv", string_of_int s.s_getv);
    ("cas", string_of_int s.s_cas);
    ("cas_conflicts", string_of_int s.s_cas_conflicts);
    ("txns", string_of_int s.s_txns);
    ("txn_commits", string_of_int s.s_txn_commits);
    ("txn_aborts", string_of_int s.s_txn_aborts);
    ("scans", string_of_int s.s_scans);
    ("scan_items", string_of_int s.s_scan_items);
  ]

let () =
  stats_fields_ref := stats_fields;
  drain_ref := drain
