(* The serving shell around the partitioned runtime, sharded (ISSUE 10).

   The keyspace is hash-partitioned across N single-writer shards
   ([key mod shards]). Each shard owns, exclusively:
   - its own execution backend instance (a whole partitioned program:
     the callers build one store per shard),
   - its slice of the version table and the ordered/hash indexes
     (a [Txn.t] with a single index lane),
   - its value-length table and its scratch value buffers,
   - an event loop, running on its own domain.

   There is no global store mutex. Each shard has a latch that its own
   event loop holds while executing a batch — uncontended on the hot
   path, because only the owner takes it. The latch exists for the
   slow paths that must reach into a shard from outside its loop:
   cross-shard transactions (two-phase commit below), cross-shard scan
   cursors, and replica delta application.

   The event loop (one per shard) multiplexes with [Unix.select] over
   nonblocking sockets and an eventfd-style self-pipe — no timeout
   polling anywhere on the serving path; every blocking wait is woken
   explicitly (new conn, cross-shard work, cross-shard completion,
   drain). Connections are fully pipelined: every parsed request gets
   a response slot in arrival order, many can be in flight at once,
   and the flush path writes the completed prefix of slots so
   responses never reorder.

   Cross-shard requests are handed to the owning shard over a bounded
   Msqueue inbox (woken via the self-pipe). Per-connection ordering:
   requests are dispatched in arrival order and same-key requests
   always land in the same shard's FIFO, so per-key program order is
   preserved; a multi-shard transaction or scan acts as a connection
   barrier (it waits until the connection's earlier requests have
   completed) and then executes inline under every participant latch —
   phase 1 validates against all shards, phase 2 applies only if all
   validated (two-phase commit; latches are taken in ascending shard
   order, so cross-shard commits cannot deadlock).

   Replication: all shards append to one shared commit log (internally
   locked), while holding their latch — so the merged sequence is
   monotone and, per key, log order equals commit order. Replicas
   apply the merged stream in order, routing each delta to its shard;
   per-shard subsequences replay bit-exact against per-shard oracles. *)

module Tel = Privagic_telemetry
module Msq = Privagic_runtime.Msqueue
module Parallel = Privagic_parallel.Parallel
module Repl = Privagic_replication
module Obs = Privagic_obs
module Txn = Privagic_txn.Txn
module Index = Privagic_txn.Index
open Privagic_vm

type store = {
  st_name : string;
  st_call : string -> Rvalue.t list -> (Rvalue.t, string) result;
  st_alloc : int -> int;
  st_write : int -> string -> unit;
  st_read : int -> int -> string;
  st_drain : unit -> unit;
  st_register_obs : Obs.Registry.t -> unit;
      (* backend gauges (steps, externs, lane phases, declassify counts)
         onto the server's registry *)
}

let store_of_heap heap =
  let write addr s =
    String.iteri
      (fun i c -> Heap.store heap (addr + i) 1 (Int64.of_int (Char.code c)))
      s
  in
  let read addr n =
    String.init n (fun i ->
        Char.chr (Int64.to_int (Heap.load heap (addr + i) 1) land 0xff))
  in
  (write, read)

let store_of_parallel p =
  let heap = (Parallel.exec p).Exec.heap in
  let st_write, st_read = store_of_heap heap in
  {
    st_name = "parallel";
    st_call =
      (fun name args ->
        match Parallel.call_entry p name args with
        | r -> Ok r.Parallel.value
        | exception Parallel.Error m -> Error m);
    st_alloc = (fun n -> Heap.alloc heap Heap.Unsafe n);
    st_write;
    st_read;
    st_drain = (fun () -> ignore (Parallel.shutdown p));
    st_register_obs = (fun reg -> Parallel.register_obs p reg);
  }

let store_of_pinterp (p : Pinterp.t) =
  let heap = p.Pinterp.exec.Exec.heap in
  let st_write, st_read = store_of_heap heap in
  {
    st_name = "simulated";
    st_call =
      (fun name args ->
        match Pinterp.call_entry p name args with
        | r -> Ok r.Pinterp.value
        | exception Pinterp.Error m -> Error m);
    st_alloc = (fun n -> Heap.alloc heap Heap.Unsafe n);
    st_write;
    st_read;
    st_drain = (fun () -> ());
    st_register_obs =
      (fun reg ->
        let ex = p.Pinterp.exec in
        let g = Obs.Registry.gauge reg in
        g ~help:"VM steps retired" "privagic_vm_steps_total" (fun () ->
            float_of_int ex.Exec.steps);
        g ~help:"extern dispatches" "privagic_vm_externs_total" (fun () ->
            float_of_int ex.Exec.externs);
        Obs.Registry.multi_gauge reg
          ~help:"declassification calls per color (shared extern path)"
          "privagic_declassify_total" (fun () ->
            Hashtbl.fold
              (fun color r acc -> ([ ("color", color) ], float_of_int !r) :: acc)
              ex.Exec.declass []
            |> List.sort compare));
  }

type bindings = {
  b_family : string;
  b_set : string;
  b_get : string;
  b_del : string option;
  b_init : string option;
  b_vcolor : string;
}

let known_families =
  [
    { b_family = "memcached"; b_set = "mc_set"; b_get = "mc_get";
      b_del = Some "mc_delete"; b_init = Some "mc_init"; b_vcolor = "U" };
    { b_family = "hashmap"; b_set = "hm_put"; b_get = "hm_get";
      b_del = None; b_init = None; b_vcolor = "U" };
    { b_family = "hashmap-2color"; b_set = "h2_put"; b_get = "h2_get";
      b_del = None; b_init = None; b_vcolor = "U" };
    { b_family = "treemap"; b_set = "tm_put"; b_get = "tm_get";
      b_del = None; b_init = None; b_vcolor = "U" };
    { b_family = "linked-list"; b_set = "ll_put"; b_get = "ll_get";
      b_del = None; b_init = None; b_vcolor = "U" };
  ]

(* The color under which stored values travel on the replication wire:
   the enclave the plan placed the store's globals in ("U" for a plain
   plan, whose store is unsafe memory anyway). When the plan spans two
   enclaves (hashmap-2color: keys blue, values red) the value bytes live
   in red, hence the preference. *)
let value_color (plan : Privagic_partition.Plan.t) =
  let named =
    List.filter_map
      (fun (_, c) ->
        match c with Privagic_pir.Color.Named n -> Some n | _ -> None)
      plan.global_placement
  in
  match named with
  | [] -> "U"
  | l -> if List.mem "red" l then "red" else List.hd l

let bindings_of_plan (plan : Privagic_partition.Plan.t) =
  let have name =
    List.exists
      (fun (e : Privagic_partition.Plan.entry_plan) -> e.ep_name = name)
      plan.entries
  in
  Option.map
    (fun b -> { b with b_vcolor = value_color plan })
    (List.find_opt (fun b -> have b.b_set && have b.b_get) known_families)

type policy = Block | Shed

type config = {
  host : string;
  port : int;
  shards : int;
  lanes : int;
  queue_depth : int;
  policy : policy;
  max_batch : int;
  vsize : int;
  telemetry : Tel.Recorder.t;
  repl_window : int;
  repl_cluster : string;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    shards = 1;
    lanes = 2;
    queue_depth = 64;
    policy = Block;
    max_batch = 8;
    vsize = 32;
    telemetry = Tel.Recorder.null;
    repl_window = 1024;
    repl_cluster = "privagic";
  }

(* [Unix.select] is limited to fd values below FD_SETSIZE (1024). The
   cap is on open client connections, counted process-fd-conservatively:
   headroom is left for the listen socket, the per-shard self-pipes,
   stdio, and replica stream fds. Beyond the cap the acceptor refuses
   with a clear error instead of corrupting every loop's select. *)
let fd_cap = 960

(* A connection may have at most this many parsed-but-unflushed requests
   before its loop stops reading it (pipelining flow control). *)
let max_pipeline = 512

(* ------------------------------------------------------------------ *)

(* One parsed request's response slot, in arrival order. Slots are
   filled out of order (a cross-shard request completes remotely) but
   flushed strictly in order. *)
type pending = {
  p_enq_at : float;
  mutable p_resp : Protocol.response option;  (* guarded by [c_mu] *)
}

type conn = {
  c_fd : Unix.file_descr;
  c_reader : Protocol.reader;
  c_shard : int;                    (* owning shard (loop) *)
  c_mu : Mutex.t;                   (* guards p_resp fills + c_inflight *)
  c_pending : pending Queue.t;      (* response slots; owner pushes/pops *)
  c_jobs : (pending * Protocol.request) Queue.t;  (* undispatched; owner *)
  c_obuf : Buffer.t;                (* rendered, not yet staged; owner *)
  mutable c_wbuf : Bytes.t;         (* staged write chunk; owner *)
  mutable c_woff : int;
  mutable c_inflight : int;         (* dispatched, unanswered; c_mu *)
  mutable c_dead : bool;            (* owner only *)
  mutable c_eof : bool;             (* owner only *)
  mutable c_quit : bool;            (* owner only *)
  mutable c_repl : (bool * int) option;  (* sync, from_seq; owner only *)
}

(* Cross-shard handoff: a request whose key hashes to another shard. *)
type xwork = { xw_conn : conn; xw_pending : pending; xw_req : Protocol.request }

type shard = {
  sh_id : int;
  sh_store : store;
  sh_txn : Txn.t;        (* this shard's versions + indexes; under latch *)
  sh_lengths : (int, int) Hashtbl.t;  (* key -> stored length; latch *)
  sh_vbuf : int;
  sh_obuf : int;
  sh_latch : Mutex.t;
      (* serializes execution on this shard's store. The owner loop
         holds it per batch (uncontended); outsiders take it for 2PC,
         scan cursors, and replica apply. *)
  sh_inbox : xwork Msq.t;           (* cross-shard requests, bounded *)
  sh_depth : int Atomic.t;          (* inbox depth *)
  sh_wake_r : Unix.file_descr;      (* self-pipe: wakes the loop *)
  sh_wake_w : Unix.file_descr;
  sh_in_mu : Mutex.t;
  sh_incoming : conn Queue.t;       (* acceptor -> loop handoff *)
  mutable sh_conns : conn list;     (* owner loop only *)
  sh_track : int;
}

type role = Primary | Replica_of of string

type t = {
  cfg : config;
  bnd : bindings;
  sh : shard array;
  listen_fd : Unix.file_descr;
  t_port : int;
  started_at : float;
  (* replication *)
  repl_log : Repl.Log.t;   (* shared: the merged monotone sequence *)
  hub : Repl.Shipper.t;
  role_mu : Mutex.t;
  mutable t_role : role;
  n_applied : int Atomic.t;        (* deltas applied while a replica *)
  n_fence_timeouts : int Atomic.t; (* sync acks that timed out *)
  tel_mu : Mutex.t;                (* the recorder is not thread-safe *)
  a_wake_r : Unix.file_descr;      (* acceptor self-pipe *)
  a_wake_w : Unix.file_descr;
  (* counters (Atomic: each is read/bumped from several domains) *)
  conns_accepted : int Atomic.t;
  conns_open : int Atomic.t;
  conns_rejected : int Atomic.t;   (* refused at the fd cap *)
  n_gets : int Atomic.t;
  n_sets : int Atomic.t;
  n_dels : int Atomic.t;
  n_hits : int Atomic.t;
  n_shed : int Atomic.t;
  n_bad : int Atomic.t;
  n_batches : int Atomic.t;
  n_coalesced : int Atomic.t;
  n_getv : int Atomic.t;
  n_cas : int Atomic.t;
  n_cas_conflicts : int Atomic.t;
  n_txns : int Atomic.t;
  n_txn_aborts : int Atomic.t;
  n_scans : int Atomic.t;
  n_scan_items : int Atomic.t;
  n_xshard : int Atomic.t;         (* requests that crossed shards *)
  m_mu : Mutex.t;
  h_latency : Tel.Metrics.histogram;
  h_qwait : Tel.Metrics.histogram;
  h_scan_len : Tel.Metrics.histogram; (* items returned per scan *)
  obs : Obs.Registry.t; (* live metrics, served via `stats metrics` *)
  (* lifecycle *)
  d_mu : Mutex.t;
  d_cv : Condition.t;
  draining : bool Atomic.t;
  mutable shutdown_req : bool;     (* d_mu; set by the shutdown verb *)
  mutable drain_started : bool;    (* d_mu *)
  mutable drained : bool;          (* d_mu *)
  mutable n_dispatched : int;      (* d_mu; shards past the drain barrier *)
  (* replica-handshake handoff: shard loops must NOT call
     [Shipper.register] themselves — the ship thread would be created on
     the shard's domain, and that domain could then never terminate
     while the replica link lives (Domain.join in [drain] would wait on
     the ship thread, which only exits in [Shipper.drain], after the
     join: deadlock). The shard queues the fd here; a registrar thread
     created at [start] (on the starting domain) owns every ship
     thread. *)
  reg_mu : Mutex.t;
  reg_cv : Condition.t;
  mutable reg_q : (Unix.file_descr * bool * int) list; (* reg_mu *)
  mutable reg_stop : bool;                             (* reg_mu *)
  mutable registrar : Thread.t option;
  mutable acceptor : Thread.t option;
  mutable supervisor : Thread.t option;
  mutable domains : unit Domain.t list;
}

let now_us t = (Unix.gettimeofday () -. t.started_at) *. 1e6

let wake_fd w =
  (* the pipe is non-blocking; a full pipe already guarantees a wakeup *)
  try ignore (Unix.write w (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EPIPE | EBADF), _, _) -> ()

let wake s = wake_fd s.sh_wake_w

let drain_pipe fd buf =
  let rec go () =
    match Unix.read fd buf 0 (Bytes.length buf) with
    | n when n > 0 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

(* Wire-capture tap for the robust-safety monitor: every response byte the
   server puts on a client connection also goes here (process-wide). *)
let wire_tap : (string -> unit) option ref = ref None

let set_wire_tap f = wire_tap := f

(* ------------------------------------------------------------------ *)
(* execution: per-shard entry calls, under that shard's latch *)

let shard_of t key = key mod Array.length t.sh

let exec_set t sh key v =
  if String.length v > t.cfg.vsize then
    Protocol.Error_msg
      (Printf.sprintf "value exceeds program value size %d" t.cfg.vsize)
  else begin
    (* the program copies exactly vsize bytes: zero-pad the tail *)
    let padded =
      if String.length v = t.cfg.vsize then v
      else v ^ String.make (t.cfg.vsize - String.length v) '\000'
    in
    sh.sh_store.st_write sh.sh_vbuf padded;
    match
      sh.sh_store.st_call t.bnd.b_set
        [ Rvalue.Int (Int64.of_int key); Rvalue.Ptr sh.sh_vbuf ]
    with
    | Ok _ ->
      Hashtbl.replace sh.sh_lengths key (String.length v);
      Protocol.Stored
    | Error m -> Protocol.Error_msg ("exec: " ^ m)
  end

let exec_get t sh key =
  match
    sh.sh_store.st_call t.bnd.b_get
      [ Rvalue.Int (Int64.of_int key); Rvalue.Ptr sh.sh_obuf ]
  with
  | Ok v when Rvalue.truthy v ->
    let len =
      match Hashtbl.find_opt sh.sh_lengths key with
      | Some n -> n
      | None -> t.cfg.vsize
    in
    Protocol.Value (key, sh.sh_store.st_read sh.sh_obuf len)
  | Ok _ -> Protocol.Miss
  | Error m -> Protocol.Error_msg ("exec: " ^ m)

let exec_del t sh key =
  match t.bnd.b_del with
  | None ->
    Protocol.Error_msg
      (Printf.sprintf "del not supported by the %s program" t.bnd.b_family)
  | Some entry -> (
    match sh.sh_store.st_call entry [ Rvalue.Int (Int64.of_int key) ] with
    | Ok v when Rvalue.truthy v ->
      Hashtbl.remove sh.sh_lengths key;
      Protocol.Deleted
    | Ok _ -> Protocol.Not_found
    | Error m -> Protocol.Error_msg ("exec: " ^ m))

(* Commit choke points: every committed write — client set/del, replica
   apply, CAS, transaction — advances the owning shard's per-key
   versions and secondary indexes here, under that shard's latch.
   Primaries and replicas run the same hooks, which is what makes
   replicas converge on versions and indexes too, not only on bytes. *)
let commit_set t sh key v =
  match exec_set t sh key v with
  | Protocol.Stored ->
    Txn.note_put sh.sh_txn ~key ~value:v;
    Protocol.Stored
  | r -> r

let commit_del t sh key =
  match exec_del t sh key with
  | Protocol.Deleted ->
    Txn.note_del sh.sh_txn ~key;
    Protocol.Deleted
  | r -> r

(* The txn executor reads and writes through the shard's own entry
   points (classify/declassify still mediate every value). Writes use
   the raw exec paths: [Txn.execute] runs the note hooks itself. *)
let txn_store_ops t sh =
  {
    Txn.o_get =
      (fun k ->
        match exec_get t sh k with
        | Protocol.Value (_, v) -> Ok (Some v)
        | Protocol.Miss -> Ok None
        | Protocol.Error_msg m -> Error m
        | _ -> Error "unexpected get response");
    o_set =
      (fun k v ->
        match exec_set t sh k v with
        | Protocol.Stored -> Ok ()
        | Protocol.Error_msg m -> Error m
        | _ -> Error "unexpected set response");
    o_del =
      (fun k ->
        match exec_del t sh k with
        | Protocol.Deleted -> Ok true
        | Protocol.Not_found -> Ok false
        | Protocol.Error_msg m -> Error m
        | _ -> Error "unexpected del response");
    (* applicability limits, so [Txn.execute] rejects a doomed write in
       its validate phase (the wire accepts values up to the frame
       limit, well past cfg.vsize) instead of failing mid-apply *)
    o_max_value = t.cfg.vsize;
    o_can_del = t.bnd.b_del <> None;
  }

(* Take the latches of the (ascending) shard ids in [ids], run [f],
   release in reverse. Ascending order is the 2PC deadlock-freedom
   argument: two cross-shard commits always contend in the same order. *)
let with_latches t ids f =
  List.iter (fun i -> Mutex.lock t.sh.(i).sh_latch) ids;
  let release () =
    List.iter (fun i -> Mutex.unlock t.sh.(i).sh_latch) (List.rev ids)
  in
  match f () with
  | r ->
    release ();
    r
  | exception e ->
    release ();
    raise e

(* ------------------------------------------------------------------ *)
(* replica-side application: a delta from the primary executes through
   the same entry paths a client request would, under the owning
   shard's latch, and mirrors the primary's numbering into the local
   log — which is what lets a promoted replica serve downstream
   replicas (and its own convergence oracle) from the same stream
   positions. The replica client applies strictly in seq order, so the
   mirrored log stays dense even though deltas fan out across shards. *)

let mirror t ~seq op =
  match Repl.Log.append_at t.repl_log ~seq op with
  | () ->
    Atomic.incr t.n_applied;
    Ok ()
  | exception Invalid_argument m -> Error m

let apply_put t ~seq ~key ~payload =
  let sh = t.sh.(shard_of t key) in
  Mutex.lock sh.sh_latch;
  let r =
    match commit_set t sh key payload with
    | Protocol.Stored ->
      mirror t ~seq
        (Repl.Delta.Put { key; color = t.bnd.b_vcolor; payload })
    | Protocol.Error_msg m -> Error m
    | _ -> Error "unexpected response applying put"
  in
  Mutex.unlock sh.sh_latch;
  r

let apply_del t ~seq ~key =
  let sh = t.sh.(shard_of t key) in
  Mutex.lock sh.sh_latch;
  let r =
    match commit_del t sh key with
    (* Not_found still mirrors: the primary numbered this delta, and the
       replica's log must stay dense to keep stream positions aligned *)
    | Protocol.Deleted | Protocol.Not_found ->
      mirror t ~seq (Repl.Delta.Del { key })
    | Protocol.Error_msg m -> Error m
    | _ -> Error "unexpected response applying del"
  in
  Mutex.unlock sh.sh_latch;
  r

let promote t =
  Mutex.lock t.role_mu;
  t.t_role <- Primary;
  Mutex.unlock t.role_mu

let role_name t =
  Mutex.lock t.role_mu;
  let r =
    match t.t_role with
    | Primary -> "primary"
    | Replica_of a -> "replica:" ^ a
  in
  Mutex.unlock t.role_mu;
  r

let is_replica t =
  Mutex.lock t.role_mu;
  let r = match t.t_role with Primary -> false | Replica_of _ -> true in
  Mutex.unlock t.role_mu;
  r

let repl_log t = t.repl_log
let repl_hub t = t.hub

(* ------------------------------------------------------------------ *)
(* response slots *)

(* Fill a dispatched slot: the matching [c_inflight] increment happened
   when the job left the undispatched queue. The latency histogram
   closes here — after execution and any sync fence, before the owner's
   flush renders the bytes. *)
let fill t c p resp =
  Mutex.lock c.c_mu;
  p.p_resp <- Some resp;
  c.c_inflight <- c.c_inflight - 1;
  Mutex.unlock c.c_mu;
  Mutex.lock t.m_mu;
  Tel.Metrics.observe t.h_latency (now_us t -. p.p_enq_at);
  Mutex.unlock t.m_mu

let inflight c =
  Mutex.lock c.c_mu;
  let n = c.c_inflight in
  Mutex.unlock c.c_mu;
  n

(* Sync-replication fence: hold responses until every live sync replica
   acknowledged this commit — read-your-writes on replica reads.
   Called outside all latches, so other shards keep executing; a wedged
   replica degrades to async after the timeout. *)
let maybe_fence t max_seq =
  if max_seq > 0 && Repl.Shipper.sync_connected t.hub > 0 then
    if not (Repl.Shipper.wait_synced t.hub ~seq:max_seq ~timeout_s:5.0) then
      Atomic.incr t.n_fence_timeouts

(* ------------------------------------------------------------------ *)
(* execution: one chunk of same-shard requests, under the shard latch *)

let tel_span t track name f =
  if t.cfg.telemetry == Tel.Recorder.null then f ()
  else begin
    Mutex.lock t.tel_mu;
    Tel.Recorder.record t.cfg.telemetry ~at:(now_us t) ~track ~name
      Tel.Event.Req_begin;
    Mutex.unlock t.tel_mu;
    let r = f () in
    Mutex.lock t.tel_mu;
    Tel.Recorder.record t.cfg.telemetry ~at:(now_us t) ~track ~name
      Tel.Event.Req_end;
    Mutex.unlock t.tel_mu;
    r
  end

(* Execute one chunk (all requests keyed to [sh]) under its latch, then
   fence, then fill the slots. Duplicate gets inside the chunk are
   served from a key cache — exact, because the chunk runs atomically
   under the latch and sets/dels of the chunk refresh the cache in
   order. Returns nothing; completions for foreign-owned connections
   are signaled by the caller (it knows which owners to wake). *)
let exec_chunk t sh (chunk : (conn * pending * Protocol.request) list) =
  let cache : (int, Protocol.response) Hashtbl.t = Hashtbl.create 8 in
  let track = sh.sh_track in
  Atomic.incr t.n_batches;
  (* highest delta seq committed by this chunk; 0 when it wrote nothing *)
  let max_seq = ref 0 in
  let committed op =
    let seq = Repl.Log.append t.repl_log op in
    if seq > !max_seq then max_seq := seq
  in
  (* a committed transaction's writes form one contiguous run in the
     log — the atomic-commit delta batch of the txn layer *)
  let delta_of w =
    match w with
    | Txn.W_put { w_key; w_value } ->
      Repl.Delta.Put { key = w_key; color = t.bnd.b_vcolor; payload = w_value }
    | Txn.W_del { w_key } -> Repl.Delta.Del { key = w_key }
  in
  let commit_writes writes =
    match writes with
    | [] -> ()
    | _ ->
      let seq = Repl.Log.append_batch t.repl_log (List.map delta_of writes) in
      if seq > !max_seq then max_seq := seq
  in
  Mutex.lock sh.sh_latch;
  let responses =
    List.map
      (fun (c, p, req) ->
        let started = now_us t in
        Mutex.lock t.m_mu;
        Tel.Metrics.observe t.h_qwait (started -. p.p_enq_at);
        Mutex.unlock t.m_mu;
        let resp =
          match req with
          | Protocol.Get k -> (
            Atomic.incr t.n_gets;
            match Hashtbl.find_opt cache k with
            | Some r ->
              Atomic.incr t.n_coalesced;
              (match r with
              | Protocol.Value _ -> Atomic.incr t.n_hits
              | _ -> ());
              r
            | None ->
              let r = tel_span t track "get" (fun () -> exec_get t sh k) in
              (match r with
              | Protocol.Value _ -> Atomic.incr t.n_hits
              | _ -> ());
              Hashtbl.replace cache k r;
              r)
          | Protocol.Set (k, v) ->
            Atomic.incr t.n_sets;
            let r = tel_span t track "set" (fun () -> commit_set t sh k v) in
            (match r with
            | Protocol.Stored ->
              committed
                (Repl.Delta.Put
                   { key = k; color = t.bnd.b_vcolor; payload = v });
              Hashtbl.replace cache k (Protocol.Value (k, v))
            | _ -> Hashtbl.remove cache k);
            r
          | Protocol.Del k ->
            Atomic.incr t.n_dels;
            let r = tel_span t track "del" (fun () -> commit_del t sh k) in
            (match r with
            | Protocol.Deleted ->
              (* Not_found has no visible effect, so it ships no delta *)
              committed (Repl.Delta.Del { key = k });
              Hashtbl.replace cache k Protocol.Miss
            | Protocol.Not_found -> Hashtbl.replace cache k Protocol.Miss
            | _ -> Hashtbl.remove cache k);
            r
          | Protocol.Getv k -> (
            Atomic.incr t.n_getv;
            (* version first: both are read under the same latch hold *)
            let ver = Txn.version sh.sh_txn k in
            match tel_span t track "getv" (fun () -> exec_get t sh k) with
            | Protocol.Value (_, v) ->
              Atomic.incr t.n_hits;
              Protocol.Version { v_key = k; v_ver = ver; v_val = Some v }
            | Protocol.Miss ->
              Protocol.Version { v_key = k; v_ver = ver; v_val = None }
            | r -> r)
          | Protocol.Cas { c_key; c_ver; c_val } -> (
            Atomic.incr t.n_cas;
            let r =
              tel_span t track "cas" (fun () ->
                  Txn.execute sh.sh_txn (txn_store_ops t sh)
                    [ Txn.T_cas (c_key, c_ver, c_val) ])
            in
            match r with
            | Txn.Committed (_, writes) ->
              commit_writes writes;
              Hashtbl.replace cache c_key (Protocol.Value (c_key, c_val));
              Protocol.Stored
            | Txn.Aborted { a_expected; a_found; _ } ->
              Atomic.incr t.n_cas_conflicts;
              if a_found = 0 && a_expected > 0 then Protocol.Not_found
              else Protocol.Cas_conflict a_found
            | Txn.Failed { f_msg; f_applied } ->
              (* any applied prefix is committed state: ship it, or
                 replicas diverge from the primary's versions *)
              commit_writes f_applied;
              List.iter
                (fun w ->
                  Hashtbl.remove cache
                    (match w with
                    | Txn.W_put { w_key; _ } | Txn.W_del { w_key } -> w_key))
                f_applied;
              Protocol.Error_msg ("exec: " ^ f_msg))
          | Protocol.Txn ops -> (
            (* single-shard transactions only: multi-shard ones execute
               inline at the owner (the 2PC barrier path) *)
            Atomic.incr t.n_txns;
            let r =
              tel_span t track "txn" (fun () ->
                  Txn.execute sh.sh_txn (txn_store_ops t sh) ops)
            in
            match r with
            | Txn.Committed (results, writes) ->
              commit_writes writes;
              List.iter
                (fun w ->
                  match w with
                  | Txn.W_put { w_key; w_value } ->
                    Hashtbl.replace cache w_key
                      (Protocol.Value (w_key, w_value))
                  | Txn.W_del { w_key } ->
                    Hashtbl.replace cache w_key Protocol.Miss)
                writes;
              Protocol.Txn_reply results
            | Txn.Aborted { a_key; a_expected; a_found } ->
              Atomic.incr t.n_txn_aborts;
              Protocol.Txn_abort
                { ta_key = a_key; ta_expected = a_expected; ta_found = a_found }
            | Txn.Failed { f_msg; f_applied } ->
              commit_writes f_applied;
              List.iter
                (fun w ->
                  Hashtbl.remove cache
                    (match w with
                    | Txn.W_put { w_key; _ } | Txn.W_del { w_key } -> w_key))
                f_applied;
              Protocol.Error_msg ("exec: " ^ f_msg))
          | Protocol.Scan _ | Protocol.Stats | Protocol.Stats_metrics
          | Protocol.Quit | Protocol.Shutdown | Protocol.Repl _ ->
            (* scans merge per-shard cursors at the owner; the rest are
               answered at parse time — none of them is ever routed *)
            Protocol.Error_msg "internal: non-routable verb in shard chunk"
        in
        (c, p, resp))
      chunk
  in
  Mutex.unlock sh.sh_latch;
  maybe_fence t !max_seq;
  List.iter (fun (c, p, resp) -> fill t c p resp) responses

(* ------------------------------------------------------------------ *)
(* barrier requests: multi-shard transactions (2PC) and scans *)

let txn_shard_ids t ops =
  List.sort_uniq compare
    (List.map
       (fun op ->
         match op with
         | Protocol.T_get k | Protocol.T_set (k, _) | Protocol.T_del k
         | Protocol.T_cas (k, _, _) ->
           shard_of t k)
       ops)

(* A transaction straddling shards: take every participant latch in
   ascending order, validate against all shards (phase 1), apply only
   if all validated (phase 2) — [Txn.execute_routed] does both phases
   under the latches, so the commit is atomic across shards. The delta
   batch is appended while the latches are held: per-key log order
   equals commit order on every shard. *)
let exec_txn_2pc t s ops =
  let ids = txn_shard_ids t ops in
  let coord =
    match ids with [] -> s.sh_txn | i :: _ -> t.sh.(i).sh_txn
  in
  let route k =
    let sh = t.sh.(shard_of t k) in
    (sh.sh_txn, txn_store_ops t sh)
  in
  Atomic.incr t.n_txns;
  let max_seq = ref 0 in
  let commit_writes writes =
    match writes with
    | [] -> ()
    | _ ->
      let delta_of w =
        match w with
        | Txn.W_put { w_key; w_value } ->
          Repl.Delta.Put
            { key = w_key; color = t.bnd.b_vcolor; payload = w_value }
        | Txn.W_del { w_key } -> Repl.Delta.Del { key = w_key }
      in
      let seq = Repl.Log.append_batch t.repl_log (List.map delta_of writes) in
      if seq > !max_seq then max_seq := seq
  in
  let resp =
    with_latches t ids (fun () ->
        match
          tel_span t s.sh_track "txn2pc" (fun () ->
              Txn.execute_routed ~route ~coord ops)
        with
        | Txn.Committed (results, writes) ->
          commit_writes writes;
          Protocol.Txn_reply results
        | Txn.Aborted { a_key; a_expected; a_found } ->
          Atomic.incr t.n_txn_aborts;
          Protocol.Txn_abort
            { ta_key = a_key; ta_expected = a_expected; ta_found = a_found }
        | Txn.Failed { f_msg; f_applied } ->
          commit_writes f_applied;
          Protocol.Error_msg ("exec: " ^ f_msg))
  in
  maybe_fence t !max_seq;
  resp

(* A scan merges per-shard ordered-index cursors: each shard's slice is
   read under its own latch (no global lock), the sorted slices are
   merged, and the first [limit] survive. Shards partition the key
   space, so there are no ties. *)
let exec_scan t s ~start ~stop ~limit =
  Atomic.incr t.n_scans;
  let items =
    tel_span t s.sh_track "scan" (fun () ->
        let per =
          Array.fold_left
            (fun acc sh ->
              Mutex.lock sh.sh_latch;
              let l = Index.range (Txn.index sh.sh_txn) ~start ~stop ~limit in
              Mutex.unlock sh.sh_latch;
              l :: acc)
            [] t.sh
        in
        let all = List.concat per in
        let sorted =
          List.sort
            (fun (a : Index.entry) (b : Index.entry) ->
              compare a.Index.e_key b.Index.e_key)
            all
        in
        List.filteri (fun i _ -> i < limit) sorted)
  in
  ignore (Atomic.fetch_and_add t.n_scan_items (List.length items));
  Mutex.lock t.m_mu;
  Tel.Metrics.observe t.h_scan_len (float_of_int (List.length items));
  Mutex.unlock t.m_mu;
  Protocol.Scan_reply
    (List.map
       (fun (e : Index.entry) ->
         (* [e_value] is populated only for color "U": a secret-colored
            value leaves as key+version alone *)
         {
           Protocol.si_key = e.Index.e_key;
           si_ver = e.Index.e_version;
           si_val = e.Index.e_value;
         })
       items)

(* ------------------------------------------------------------------ *)
(* parse-time handling (owner loop) *)

(* [stats_fields] and [drain] are defined at the end of the file but
   needed here; tied through refs to keep the file in reading order
   instead of one giant [let rec]. *)
let stats_fields_ref : (t -> (string * string) list) ref = ref (fun _ -> [])
let drain_ref : (t -> unit) ref = ref (fun _ -> ())

let request_shutdown t =
  Mutex.lock t.d_mu;
  t.shutdown_req <- true;
  Condition.broadcast t.d_cv;
  Mutex.unlock t.d_mu

let answer_local t c resp =
  Queue.push { p_enq_at = now_us t; p_resp = Some resp } c.c_pending

let push_job t c req =
  let p = { p_enq_at = now_us t; p_resp = None } in
  Queue.push p c.c_pending;
  Queue.push (p, req) c.c_jobs

(* Locally-answerable verbs resolve at parse time; everything on the
   data path becomes an undispatched job. Response order is still
   arrival order: local answers occupy their slot like any other. *)
let handle_parsed t c item =
  match item with
  | `Bad m ->
    Atomic.incr t.n_bad;
    answer_local t c (Protocol.Error_msg m)
  | `Req r -> (
    match r with
    | Protocol.Stats -> answer_local t c (Protocol.Stats_reply (!stats_fields_ref t))
    | Protocol.Stats_metrics ->
      answer_local t c (Protocol.Metrics_reply (Obs.Registry.expose t.obs))
    | Protocol.Quit ->
      (* memcached semantics: no reply; close once prior slots flush *)
      c.c_quit <- true;
      c.c_eof <- true
    | Protocol.Shutdown ->
      answer_local t c Protocol.Ok_msg;
      (* the supervisor thread (main domain) runs the drain: draining
         from a shard domain would join itself *)
      request_shutdown t
    | Protocol.Repl { r_sync; r_from } ->
      (* replication handshake: this connection leaves the request loop
         for good — once its slots flush, the shipper owns the fd. The
         replica sends nothing between its hello and the first frames,
         so the parse buffer is empty at the handoff. *)
      c.c_repl <- Some (r_sync, r_from);
      c.c_eof <- true
    | (Protocol.Set _ | Protocol.Del _ | Protocol.Cas _) when is_replica t ->
      (* replicas apply the primary's stream, never client writes *)
      answer_local t c (Protocol.Error_msg "read-only replica")
    | Protocol.Txn ops
      when is_replica t
           && List.exists
                (function Protocol.T_get _ -> false | _ -> true)
                ops ->
      (* read-only transactions are fine on a replica; writes are not *)
      answer_local t c (Protocol.Error_msg "read-only replica")
    | Protocol.Get _ | Protocol.Set _ | Protocol.Del _ | Protocol.Getv _
    | Protocol.Cas _ | Protocol.Scan _ | Protocol.Txn _ ->
      push_job t c r)

(* ------------------------------------------------------------------ *)
(* dispatch (owner loop): route undispatched jobs in arrival order *)

type route = Local_shard | Remote_shard of int | Barrier

let route_of t s req =
  match req with
  | Protocol.Get k | Protocol.Set (k, _) | Protocol.Del k | Protocol.Getv k
  | Protocol.Cas { c_key = k; _ } ->
    let r = shard_of t k in
    if r = s.sh_id then Local_shard else Remote_shard r
  | Protocol.Txn ops -> (
    match txn_shard_ids t ops with
    | [ r ] -> if r = s.sh_id then Local_shard else Remote_shard r
    | _ -> Barrier (* spans shards (or touches none): inline 2PC *))
  | Protocol.Scan _ -> Barrier
  | _ -> Barrier (* unreachable: local verbs never become jobs *)

(* Pop up to [max_batch] cross-shard requests from our inbox and run
   them as one chunk. Returns the number processed; fills for foreign
   connections wake their owners (deduplicated). *)
let process_inbox_round t s =
  let rec take acc n =
    if n >= t.cfg.max_batch then List.rev acc
    else
      match Msq.pop s.sh_inbox with
      | Some xw ->
        Atomic.decr s.sh_depth;
        take (xw :: acc) (n + 1)
      | None -> List.rev acc
  in
  match take [] 0 with
  | [] -> 0
  | items ->
    exec_chunk t s
      (List.map (fun xw -> (xw.xw_conn, xw.xw_pending, xw.xw_req)) items);
    let woken = Array.make (Array.length t.sh) false in
    List.iter
      (fun xw ->
        let o = xw.xw_conn.c_shard in
        if o <> s.sh_id && not woken.(o) then begin
          woken.(o) <- true;
          wake t.sh.(o)
        end)
      items;
    List.length items

(* Reserve a slot in shard [r]'s inbox, honoring the backpressure
   policy. Under [Block], a full target stalls us — but we drain our
   own inbox while waiting, so two shards blocked on each other's full
   inboxes still make progress (no cross-shard backpressure deadlock). *)
let rec admit_remote t s r =
  let d = t.sh.(r).sh_depth in
  let cur = Atomic.get d in
  if cur < t.cfg.queue_depth then
    if Atomic.compare_and_set d cur (cur + 1) then true else admit_remote t s r
  else
    match t.cfg.policy with
    | Shed -> false
    | Block ->
      if process_inbox_round t s = 0 then Unix.sleepf 0.0005;
      admit_remote t s r

let fill_busy t c p =
  Atomic.incr t.n_shed;
  fill t c p Protocol.Busy

(* Dispatch a connection's undispatched jobs in arrival order. Local
   jobs join [batch] (executed by the caller); remote jobs enter the
   target inbox; a barrier job (multi-shard txn, scan) runs inline once
   every earlier request of this connection has completed — that wait
   is what makes a cross-shard transaction see its own connection's
   earlier writes. Stops at an unready barrier; resumes when fills
   arrive (the filler wakes us). *)
let dispatch_conn t s c batch batch_n progressed =
  if c.c_dead then Queue.clear c.c_jobs
  else begin
    let continue = ref true in
    while !continue && not (Queue.is_empty c.c_jobs) do
      let p, req = Queue.peek c.c_jobs in
      let pop_dispatch () =
        ignore (Queue.pop c.c_jobs);
        Mutex.lock c.c_mu;
        c.c_inflight <- c.c_inflight + 1;
        Mutex.unlock c.c_mu;
        progressed := true
      in
      match route_of t s req with
      | Local_shard ->
        pop_dispatch ();
        if
          t.cfg.policy = Shed
          && !batch_n + Atomic.get s.sh_depth >= t.cfg.queue_depth
        then fill_busy t c p
        else begin
          batch := (c, p, req) :: !batch;
          incr batch_n
        end
      | Remote_shard r ->
        pop_dispatch ();
        Atomic.incr t.n_xshard;
        if admit_remote t s r then begin
          Msq.push t.sh.(r).sh_inbox { xw_conn = c; xw_pending = p; xw_req = req };
          wake t.sh.(r)
        end
        else fill_busy t c p
      | Barrier ->
        if inflight c = 0 then begin
          pop_dispatch ();
          let resp =
            match req with
            | Protocol.Txn ops -> exec_txn_2pc t s ops
            | Protocol.Scan { sc_start; sc_stop; sc_limit } ->
              exec_scan t s ~start:sc_start ~stop:sc_stop ~limit:sc_limit
            | _ -> Protocol.Error_msg "internal: unexpected barrier verb"
          in
          (match req with
          | Protocol.Txn ops when txn_shard_ids t ops <> [ s.sh_id ] ->
            Atomic.incr t.n_xshard
          | _ -> ());
          fill t c p resp
        end
        else continue := false
    done
  end

(* Run the shard forward until quiescent: drain the inbox, dispatch
   every connection, execute the local batch (in [max_batch] chunks),
   repeat — executing may unblock barriers, and barrier execution may
   have pushed new inbox work at us. *)
let progress t s =
  let again = ref true in
  while !again do
    again := false;
    if process_inbox_round t s > 0 then again := true;
    let batch = ref [] and batch_n = ref 0 in
    List.iter (fun c -> dispatch_conn t s c batch batch_n again) s.sh_conns;
    let jobs = List.rev !batch in
    let rec chunks = function
      | [] -> ()
      | l ->
        let rec split n acc = function
          | [] -> (List.rev acc, [])
          | rest when n = 0 -> (List.rev acc, rest)
          | x :: rest -> split (n - 1) (x :: acc) rest
        in
        let chunk, rest = split t.cfg.max_batch [] l in
        exec_chunk t s chunk;
        chunks rest
    in
    if jobs <> [] then chunks jobs
  done

(* ------------------------------------------------------------------ *)
(* connection I/O (owner loop) *)

let read_conn t c rbuf =
  match Unix.read c.c_fd rbuf 0 (Bytes.length rbuf) with
  | 0 -> c.c_eof <- true
  | n ->
    List.iter
      (fun item ->
        if (not c.c_quit) && c.c_repl = None && not c.c_dead then
          handle_parsed t c item)
      (Protocol.feed c.c_reader rbuf n)
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> c.c_dead <- true

let has_output c =
  c.c_woff < Bytes.length c.c_wbuf || Buffer.length c.c_obuf > 0

let write_out c =
  let rec go () =
    if c.c_woff >= Bytes.length c.c_wbuf then begin
      if Buffer.length c.c_obuf > 0 then begin
        c.c_wbuf <- Buffer.to_bytes c.c_obuf;
        Buffer.clear c.c_obuf;
        c.c_woff <- 0;
        go ()
      end
    end
    else
      match
        Unix.write c.c_fd c.c_wbuf c.c_woff (Bytes.length c.c_wbuf - c.c_woff)
      with
      | 0 -> ()
      | n ->
        c.c_woff <- c.c_woff + n;
        go ()
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error (EINTR, _, _) -> go ()
      | exception Unix.Unix_error _ -> c.c_dead <- true
  in
  if not c.c_dead then go ()

(* Render the completed prefix of response slots (strictly in arrival
   order) and push bytes out nonblockingly; a slow client accumulates
   buffer and gets picked up by write-readiness. *)
let flush_conn c =
  if not c.c_dead then begin
    let continue = ref true in
    while !continue do
      match Queue.peek_opt c.c_pending with
      | None -> continue := false
      | Some p -> (
        Mutex.lock c.c_mu;
        let r = p.p_resp in
        Mutex.unlock c.c_mu;
        match r with
        | Some resp ->
          ignore (Queue.pop c.c_pending);
          let s = Protocol.render resp in
          (match !wire_tap with None -> () | Some f -> f s);
          Buffer.add_string c.c_obuf s
        | None -> continue := false)
    done;
    write_out c
  end

let close_conn t c =
  (try Unix.close c.c_fd with Unix.Unix_error _ -> ());
  Atomic.decr t.conns_open

(* Drop finished connections; hand replica handshakes to the shipper. *)
let sweep t s =
  s.sh_conns <-
    List.filter
      (fun c ->
        if c.c_dead then begin
          close_conn t c;
          false
        end
        else
          match c.c_repl with
          | Some (sync, from_seq)
            when Queue.is_empty c.c_pending && not (has_output c) ->
            (* prior responses flushed: hand the fd to the registrar
               thread, which owns every ship thread (see [reg_q]) *)
            Mutex.lock t.reg_mu;
            t.reg_q <- (c.c_fd, sync, from_seq) :: t.reg_q;
            Condition.signal t.reg_cv;
            Mutex.unlock t.reg_mu;
            Atomic.decr t.conns_open;
            false
          | Some _ -> true
          | None ->
            if
              (c.c_eof || c.c_quit)
              && Queue.is_empty c.c_jobs
              && Queue.is_empty c.c_pending
              && not (has_output c)
            then begin
              close_conn t c;
              false
            end
            else true)
      s.sh_conns

let adopt t s =
  Mutex.lock s.sh_in_mu;
  let fresh = Queue.fold (fun acc c -> c :: acc) [] s.sh_incoming in
  Queue.clear s.sh_incoming;
  Mutex.unlock s.sh_in_mu;
  ignore t;
  s.sh_conns <- fresh @ s.sh_conns

(* ------------------------------------------------------------------ *)
(* the per-shard event loop (one domain each) *)

let note_dispatched t =
  Mutex.lock t.d_mu;
  t.n_dispatched <- t.n_dispatched + 1;
  Condition.broadcast t.d_cv;
  Mutex.unlock t.d_mu

let shard_loop t s =
  let rbuf = Bytes.create 65536 in
  let pbuf = Bytes.create 256 in
  let running = ref true in
  let dispatched_flagged = ref false in
  while !running do
    let draining = Atomic.get t.draining in
    let rds = ref [ s.sh_wake_r ] in
    let wrs = ref [] in
    List.iter
      (fun c ->
        if not c.c_dead then begin
          if
            (not c.c_eof) && (not draining)
            && Queue.length c.c_pending < max_pipeline
          then rds := c.c_fd :: !rds;
          if has_output c then wrs := c.c_fd :: !wrs
        end)
      s.sh_conns;
    (* no timeout on the serving path: every event that needs us writes
       the self-pipe. While draining, a bounded timeout catches peers
       that stall mid-flush (they are dropped, like the old 30 s write
       deadline, so a wedged client cannot hang the drain). *)
    let timeout = if draining then 5.0 else -1.0 in
    (match Unix.select !rds !wrs [] timeout with
    | [], [], [] ->
      if draining then
        List.iter (fun c -> if has_output c then c.c_dead <- true) s.sh_conns
    | rd, _, _ ->
      if List.mem s.sh_wake_r rd then drain_pipe s.sh_wake_r pbuf;
      List.iter
        (fun c ->
          if (not c.c_dead) && List.mem c.c_fd rd then read_conn t c rbuf)
        s.sh_conns
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | exception Unix.Unix_error (EBADF, _, _) ->
      (* a raced fd: drop connections that died under us *)
      List.iter
        (fun c ->
          match Unix.fstat c.c_fd with
          | _ -> ()
          | exception Unix.Unix_error _ -> c.c_dead <- true)
        s.sh_conns);
    adopt t s;
    progress t s;
    List.iter flush_conn s.sh_conns;
    sweep t s;
    if draining then begin
      (* two-stage drain. Stage 1: every shard reports "all parsed work
         dispatched" (jobs may still be in flight in other shards'
         inboxes). Only when all shards report does [drain] close the
         inboxes — so no inbox push can race its close. Stage 2: drain
         the closed inbox, finish the fills and flushes, exit. *)
      let all_dispatched =
        List.for_all (fun c -> Queue.is_empty c.c_jobs) s.sh_conns
        &&
        (Mutex.lock s.sh_in_mu;
         let e = Queue.is_empty s.sh_incoming in
         Mutex.unlock s.sh_in_mu;
         e)
      in
      if (not !dispatched_flagged) && all_dispatched then begin
        dispatched_flagged := true;
        note_dispatched t
      end;
      let finished =
        !dispatched_flagged
        && Msq.is_closed s.sh_inbox
        && Msq.is_empty s.sh_inbox
        && List.for_all
             (fun c ->
               Queue.is_empty c.c_jobs
               && Queue.is_empty c.c_pending
               && not (has_output c))
             s.sh_conns
      in
      if finished then begin
        List.iter (close_conn t) s.sh_conns;
        s.sh_conns <- [];
        running := false
      end
    end
  done

(* ------------------------------------------------------------------ *)
(* acceptor *)

let acceptor_loop t =
  let next = ref 0 in
  let pbuf = Bytes.create 256 in
  while not (Atomic.get t.draining) do
    match Unix.select [ t.listen_fd; t.a_wake_r ] [] [] (-1.0) with
    | rd, _, _ ->
      if List.mem t.a_wake_r rd then drain_pipe t.a_wake_r pbuf;
      if List.mem t.listen_fd rd then (
        match Unix.accept t.listen_fd with
        | fd, _ ->
          if Atomic.get t.conns_open >= fd_cap then begin
            (* select-based loops cannot take fds past FD_SETSIZE: refuse
               loudly instead of corrupting every shard's readiness set *)
            Atomic.incr t.conns_rejected;
            let msg =
              Protocol.render
                (Protocol.Error_msg
                   (Printf.sprintf "too many connections (fd cap %d)" fd_cap))
            in
            (match !wire_tap with None -> () | Some f -> f msg);
            (try ignore (Unix.write_substring fd msg 0 (String.length msg))
             with Unix.Unix_error _ -> ());
            try Unix.close fd with Unix.Unix_error _ -> ()
          end
          else begin
            Unix.set_nonblock fd;
            (try Unix.setsockopt fd Unix.TCP_NODELAY true
             with Unix.Unix_error _ -> ());
            let s = t.sh.(!next mod Array.length t.sh) in
            next := !next + 1;
            let c =
              {
                c_fd = fd;
                c_reader = Protocol.reader ();
                c_shard = s.sh_id;
                c_mu = Mutex.create ();
                c_pending = Queue.create ();
                c_jobs = Queue.create ();
                c_obuf = Buffer.create 256;
                c_wbuf = Bytes.create 0;
                c_woff = 0;
                c_inflight = 0;
                c_dead = false;
                c_eof = false;
                c_quit = false;
                c_repl = None;
              }
            in
            Atomic.incr t.conns_accepted;
            Atomic.incr t.conns_open;
            Mutex.lock s.sh_in_mu;
            Queue.push c s.sh_incoming;
            Mutex.unlock s.sh_in_mu;
            wake s
          end
        | exception Unix.Unix_error _ -> ())
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> ()
  done;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ())

(* The supervisor turns a [shutdown] verb into a drain. It lives on the
   main domain: a shard loop cannot run the drain itself (Domain.join
   on its own domain), so the verb only flags [shutdown_req]. *)
let supervisor_loop t =
  Mutex.lock t.d_mu;
  while not (t.shutdown_req || t.drain_started) do
    Condition.wait t.d_cv t.d_mu
  done;
  let run = t.shutdown_req && not t.drain_started in
  Mutex.unlock t.d_mu;
  if run then !drain_ref t

(* Registers queued replica links with the shipper. Runs on the
   starting domain so ship threads never pin a shard domain (see
   [reg_q]). On stop it flushes the queue first: a handshake a shard
   handed off just before exiting still gets its ship thread, and
   [Shipper.drain] (called after this thread joins) then bounds its
   lifetime. *)
let registrar_loop t =
  let stop = ref false in
  while not !stop do
    Mutex.lock t.reg_mu;
    while t.reg_q = [] && not t.reg_stop do
      Condition.wait t.reg_cv t.reg_mu
    done;
    let q = List.rev t.reg_q in
    t.reg_q <- [];
    stop := t.reg_stop;
    Mutex.unlock t.reg_mu;
    List.iter
      (fun (fd, sync, from_seq) -> Repl.Shipper.register t.hub fd ~sync ~from_seq)
      q
  done

(* ------------------------------------------------------------------ *)
(* lifecycle *)

let start ?replica_of cfg bnd (stores : store array) =
  if cfg.shards < 1 then invalid_arg "Server.start: shards must be positive";
  if cfg.lanes < 1 then invalid_arg "Server.start: lanes must be positive";
  if Array.length stores <> cfg.shards then
    invalid_arg
      (Printf.sprintf "Server.start: %d stores for %d shards"
         (Array.length stores) cfg.shards);
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     Unix.bind listen_fd
       (Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port));
     Unix.listen listen_fd 128
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     failwith
       (Printf.sprintf "cannot bind %s:%d (%s)" cfg.host cfg.port
          (Printexc.to_string e)));
  let t_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> cfg.port
  in
  let metrics = Tel.Metrics.create () in
  let started_at = Unix.gettimeofday () in
  let tel_mu = Mutex.create () in
  (* the shipper threads record their sends on a track of their own *)
  let repl_span =
    if cfg.telemetry == Tel.Recorder.null then fun _ f -> f ()
    else begin
      let track = Tel.Recorder.fresh_track cfg.telemetry "srv/repl" in
      let record name ev =
        Mutex.lock tel_mu;
        Tel.Recorder.record cfg.telemetry
          ~at:((Unix.gettimeofday () -. started_at) *. 1e6)
          ~track ~name ev;
        Mutex.unlock tel_mu
      in
      fun name f ->
        record name Tel.Event.Req_begin;
        f ();
        record name Tel.Event.Req_end
    end
  in
  let repl_log = Repl.Log.create () in
  let hub =
    Repl.Shipper.create ~window:cfg.repl_window ~cluster:cfg.repl_cluster
      ~span:repl_span ~log:repl_log ()
  in
  let mk_pipe () =
    let r, w = Unix.pipe () in
    Unix.set_nonblock r;
    Unix.set_nonblock w;
    (r, w)
  in
  let sh =
    Array.init cfg.shards (fun i ->
        let store = stores.(i) in
        let wake_r, wake_w = mk_pipe () in
        {
          sh_id = i;
          sh_store = store;
          (* contract (see Txn.create): the bound stores must be empty
             when the server starts — there is no enumeration entry
             point to backfill versions/indexes from. The known
             families' init entries all build empty tables. The index
             needs a single lane: this shard already owns exactly the
             keys congruent to i mod shards. *)
          sh_txn = Txn.create ~lanes:1 ~value_color:bnd.b_vcolor ();
          sh_lengths = Hashtbl.create 1024;
          sh_vbuf = store.st_alloc (max 1 cfg.vsize);
          sh_obuf = store.st_alloc (max 1 cfg.vsize);
          sh_latch = Mutex.create ();
          sh_inbox = Msq.create ();
          sh_depth = Atomic.make 0;
          sh_wake_r = wake_r;
          sh_wake_w = wake_w;
          sh_in_mu = Mutex.create ();
          sh_incoming = Queue.create ();
          sh_conns = [];
          sh_track =
            (if cfg.telemetry == Tel.Recorder.null then 0
             else
               Tel.Recorder.fresh_track cfg.telemetry
                 (Printf.sprintf "srv/shard%d" i));
        })
  in
  let a_wake_r, a_wake_w = mk_pipe () in
  let t =
    {
      cfg;
      bnd;
      sh;
      listen_fd;
      t_port;
      started_at;
      repl_log;
      hub;
      role_mu = Mutex.create ();
      t_role =
        (match replica_of with
        | Some addr -> Replica_of addr
        | None -> Primary);
      n_applied = Atomic.make 0;
      n_fence_timeouts = Atomic.make 0;
      tel_mu;
      a_wake_r;
      a_wake_w;
      conns_accepted = Atomic.make 0;
      conns_open = Atomic.make 0;
      conns_rejected = Atomic.make 0;
      n_gets = Atomic.make 0;
      n_sets = Atomic.make 0;
      n_dels = Atomic.make 0;
      n_hits = Atomic.make 0;
      n_shed = Atomic.make 0;
      n_bad = Atomic.make 0;
      n_batches = Atomic.make 0;
      n_coalesced = Atomic.make 0;
      n_getv = Atomic.make 0;
      n_cas = Atomic.make 0;
      n_cas_conflicts = Atomic.make 0;
      n_txns = Atomic.make 0;
      n_txn_aborts = Atomic.make 0;
      n_scans = Atomic.make 0;
      n_scan_items = Atomic.make 0;
      n_xshard = Atomic.make 0;
      m_mu = Mutex.create ();
      h_latency = Tel.Metrics.histogram metrics "server latency (us)";
      h_qwait = Tel.Metrics.histogram metrics "queue wait (us)";
      h_scan_len = Tel.Metrics.histogram metrics "scan length (items)";
      obs = Obs.Registry.create ();
      d_mu = Mutex.create ();
      d_cv = Condition.create ();
      draining = Atomic.make false;
      shutdown_req = false;
      drain_started = false;
      drained = false;
      n_dispatched = 0;
      reg_mu = Mutex.create ();
      reg_cv = Condition.create ();
      reg_q = [];
      reg_stop = false;
      registrar = None;
      acceptor = None;
      supervisor = None;
      domains = [];
    }
  in
  (* live metrics (lib/obs): server counters and summaries, per-shard
     inbox depths, replication shipper gauges, then whatever the
     backend store contributes (pool lane phases, steps, declassify
     counts). Registered before the first thread starts so
     `stats metrics` is complete from the first request on. *)
  (let reg = t.obs in
   let ac name help (a : int Atomic.t) =
     Obs.Registry.gauge reg ~help name (fun () -> float_of_int (Atomic.get a))
   in
   Obs.Registry.multi_gauge reg ~help:"requests served, by operation"
     "privagic_server_ops_total" (fun () ->
       [
         ([ ("op", "get") ], float_of_int (Atomic.get t.n_gets));
         ([ ("op", "set") ], float_of_int (Atomic.get t.n_sets));
         ([ ("op", "del") ], float_of_int (Atomic.get t.n_dels));
         ([ ("op", "getv") ], float_of_int (Atomic.get t.n_getv));
         ([ ("op", "cas") ], float_of_int (Atomic.get t.n_cas));
         ([ ("op", "scan") ], float_of_int (Atomic.get t.n_scans));
         ([ ("op", "txn") ], float_of_int (Atomic.get t.n_txns));
       ]);
   ac "privagic_server_hits_total" "get requests answered with a value"
     t.n_hits;
   ac "privagic_server_shed_total" "requests shed above the high-water mark"
     t.n_shed;
   ac "privagic_server_protocol_errors_total" "malformed request lines"
     t.n_bad;
   ac "privagic_server_batches_total" "executor batches" t.n_batches;
   ac "privagic_server_coalesced_total" "gets coalesced inside a batch"
     t.n_coalesced;
   ac "privagic_server_conns_accepted_total" "connections accepted"
     t.conns_accepted;
   ac "privagic_server_conns_open" "connections currently open" t.conns_open;
   ac "privagic_server_conns_rejected_total"
     "connections refused at the select fd cap" t.conns_rejected;
   ac "privagic_server_xshard_total"
     "requests routed or committed across shards" t.n_xshard;
   ac "privagic_server_repl_applied_total" "deltas applied while a replica"
     t.n_applied;
   ac "privagic_server_repl_fence_timeouts_total" "sync acks that timed out"
     t.n_fence_timeouts;
   ac "privagic_server_cas_conflicts_total"
     "CAS guards that lost to an earlier writer" t.n_cas_conflicts;
   Obs.Registry.gauge reg
     ~help:"transactions committed (including single-op cas)"
     "privagic_txn_commits_total" (fun () ->
       float_of_int
         (Array.fold_left (fun acc s -> acc + Txn.commits s.sh_txn) 0 t.sh));
   Obs.Registry.gauge reg ~help:"transactions aborted by a CAS guard"
     "privagic_txn_aborts_total" (fun () ->
       float_of_int
         (Array.fold_left (fun acc s -> acc + Txn.aborts s.sh_txn) 0 t.sh));
   Obs.Registry.summary reg ~help:"items returned per range scan"
     "privagic_scan_items" (fun () ->
       Mutex.lock t.m_mu;
       let p = Tel.Metrics.pctiles t.h_scan_len in
       Mutex.unlock t.m_mu;
       p);
   Obs.Registry.multi_gauge reg ~help:"pending cross-shard requests per shard"
     "privagic_server_queue_depth" (fun () ->
       Array.to_list
         (Array.map
            (fun s ->
              ( [ ("shard", string_of_int s.sh_id) ],
                float_of_int (Atomic.get s.sh_depth) ))
            t.sh));
   Obs.Registry.gauge reg ~help:"replication log head sequence"
     "privagic_repl_seq" (fun () -> float_of_int (Repl.Log.head t.repl_log));
   Obs.Registry.summary reg ~help:"request latency (microseconds)"
     "privagic_server_latency_us" (fun () ->
       Mutex.lock t.m_mu;
       let p = Tel.Metrics.pctiles t.h_latency in
       Mutex.unlock t.m_mu;
       p);
   Obs.Registry.summary reg ~help:"queue wait (microseconds)"
     "privagic_server_queue_wait_us" (fun () ->
       Mutex.lock t.m_mu;
       let p = Tel.Metrics.pctiles t.h_qwait in
       Mutex.unlock t.m_mu;
       p);
   Repl.Shipper.register_obs t.hub reg;
   (* one store registers its fixed-name gauges; with several shards the
      other backends' counters are visible through `stats` instead
      (registering all would collide on metric names) *)
   stores.(0).st_register_obs reg);
  t.domains <-
    Array.to_list
      (Array.map (fun s -> Domain.spawn (fun () -> shard_loop t s)) t.sh);
  t.registrar <- Some (Thread.create (fun () -> registrar_loop t) ());
  t.supervisor <- Some (Thread.create (fun () -> supervisor_loop t) ());
  t.acceptor <- Some (Thread.create (fun () -> acceptor_loop t) ());
  t

let port t = t.t_port
let metrics_registry t = t.obs
let is_draining t = Atomic.get t.draining

let drain t =
  Mutex.lock t.d_mu;
  if t.drain_started then begin
    while not t.drained do
      Condition.wait t.d_cv t.d_mu
    done;
    Mutex.unlock t.d_mu
  end
  else begin
    t.drain_started <- true;
    Condition.broadcast t.d_cv (* releases an idle supervisor *);
    Mutex.unlock t.d_mu;
    Atomic.set t.draining true;
    wake_fd t.a_wake_w;
    (match t.acceptor with Some th -> Thread.join th | None -> ());
    Array.iter wake t.sh;
    (* stage 1: wait until every shard has dispatched all parsed work —
       after this, nothing new can enter any inbox *)
    Mutex.lock t.d_mu;
    while t.n_dispatched < t.cfg.shards do
      Condition.wait t.d_cv t.d_mu
    done;
    Mutex.unlock t.d_mu;
    (* stage 2: close the inboxes; each loop drains to empty-after-close
       (the Msqueue drain protocol — no queued request is lost), fills,
       flushes, and exits *)
    Array.iter (fun s -> Msq.close s.sh_inbox) t.sh;
    Array.iter wake t.sh;
    List.iter Domain.join t.domains;
    t.domains <- [];
    (* stop the registrar after the last shard exits: it flushes any
       handshake still queued, so its ship thread exists before the
       shipper's drain below bounds every link's lifetime *)
    Mutex.lock t.reg_mu;
    t.reg_stop <- true;
    Condition.broadcast t.reg_cv;
    Mutex.unlock t.reg_mu;
    (match t.registrar with Some th -> Thread.join th | None -> ());
    (* the log is final now: flush its tail to every replica and wait
       (bounded) for their acks before tearing the backends down *)
    Repl.Shipper.drain t.hub ~timeout_s:5.0;
    Array.iter (fun s -> s.sh_store.st_drain ()) t.sh;
    Array.iter
      (fun s ->
        try
          Unix.close s.sh_wake_r;
          Unix.close s.sh_wake_w
        with Unix.Unix_error _ -> ())
      t.sh;
    (try
       Unix.close t.a_wake_r;
       Unix.close t.a_wake_w
     with Unix.Unix_error _ -> ());
    Mutex.lock t.d_mu;
    t.drained <- true;
    Condition.broadcast t.d_cv;
    Mutex.unlock t.d_mu
  end

let wait t =
  Mutex.lock t.d_mu;
  while not t.drained do
    Condition.wait t.d_cv t.d_mu
  done;
  Mutex.unlock t.d_mu

(* ------------------------------------------------------------------ *)
(* stats *)

type stats = {
  s_uptime : float;
  s_conns_accepted : int;
  s_conns_open : int;
  s_ops : int;
  s_gets : int;
  s_sets : int;
  s_dels : int;
  s_hits : int;
  s_shed : int;
  s_bad : int;
  s_batches : int;
  s_coalesced : int;
  s_depth : int array;
  s_latency : Tel.Metrics.pctiles;
  s_queue_wait : Tel.Metrics.pctiles;
  s_role : string;
  s_replicas : int;
  s_repl_lag_us : float;
  s_repl_seq : int;
  s_applied : int;
  s_fence_timeouts : int;
  s_getv : int;
  s_cas : int;
  s_cas_conflicts : int;
  s_txns : int;
  s_txn_commits : int;
  s_txn_aborts : int;
  s_scans : int;
  s_scan_items : int;
  s_shards : int;
  s_xshard : int;
  s_conns_rejected : int;
  s_fd_cap : int;
}

let stats t =
  let g = Atomic.get in
  Mutex.lock t.m_mu;
  let lat = Tel.Metrics.pctiles t.h_latency in
  let qw = Tel.Metrics.pctiles t.h_qwait in
  Mutex.unlock t.m_mu;
  {
    s_uptime = Unix.gettimeofday () -. t.started_at;
    s_conns_accepted = g t.conns_accepted;
    s_conns_open = g t.conns_open;
    s_ops =
      g t.n_gets + g t.n_sets + g t.n_dels + g t.n_getv + g t.n_cas
      + g t.n_txns + g t.n_scans;
    s_gets = g t.n_gets;
    s_sets = g t.n_sets;
    s_dels = g t.n_dels;
    s_hits = g t.n_hits;
    s_shed = g t.n_shed;
    s_bad = g t.n_bad;
    s_batches = g t.n_batches;
    s_coalesced = g t.n_coalesced;
    s_depth = Array.map (fun s -> Atomic.get s.sh_depth) t.sh;
    s_latency = lat;
    s_queue_wait = qw;
    s_role = role_name t;
    s_replicas = Repl.Shipper.connected t.hub;
    s_repl_lag_us = Repl.Shipper.last_lag_us t.hub;
    s_repl_seq = Repl.Log.head t.repl_log;
    s_applied = g t.n_applied;
    s_fence_timeouts = g t.n_fence_timeouts;
    s_getv = g t.n_getv;
    s_cas = g t.n_cas;
    s_cas_conflicts = g t.n_cas_conflicts;
    s_txns = g t.n_txns;
    s_txn_commits =
      Array.fold_left (fun acc s -> acc + Txn.commits s.sh_txn) 0 t.sh;
    s_txn_aborts =
      Array.fold_left (fun acc s -> acc + Txn.aborts s.sh_txn) 0 t.sh;
    s_scans = g t.n_scans;
    s_scan_items = g t.n_scan_items;
    s_shards = t.cfg.shards;
    s_xshard = g t.n_xshard;
    s_conns_rejected = g t.conns_rejected;
    s_fd_cap = fd_cap;
  }

let stats_fields t =
  let s = stats t in
  let f = Printf.sprintf "%.1f" in
  [
    ("family", t.bnd.b_family);
    ("backend", t.sh.(0).sh_store.st_name);
    ("uptime_s", f s.s_uptime);
    ("lanes", string_of_int t.cfg.lanes);
    ("conns_accepted", string_of_int s.s_conns_accepted);
    ("conns_open", string_of_int s.s_conns_open);
    ("ops", string_of_int s.s_ops);
    ("gets", string_of_int s.s_gets);
    ("sets", string_of_int s.s_sets);
    ("dels", string_of_int s.s_dels);
    ("hits", string_of_int s.s_hits);
    ("shed", string_of_int s.s_shed);
    ("protocol_errors", string_of_int s.s_bad);
    ("batches", string_of_int s.s_batches);
    ("coalesced_gets", string_of_int s.s_coalesced);
    ("queue_depth",
     String.concat "," (Array.to_list (Array.map string_of_int s.s_depth)));
    ("latency_us_p50", f s.s_latency.Tel.Metrics.p50);
    ("latency_us_p95", f s.s_latency.Tel.Metrics.p95);
    ("latency_us_p99", f s.s_latency.Tel.Metrics.p99);
    ("queue_wait_us_p50", f s.s_queue_wait.Tel.Metrics.p50);
    (* replication fields append after the historical ones so existing
       parsers that read positionally keep working *)
    ("role", s.s_role);
    ("replicas_connected", string_of_int s.s_replicas);
    ("replication_lag_us", f s.s_repl_lag_us);
    ("repl_seq", string_of_int s.s_repl_seq);
    ("repl_applied", string_of_int s.s_applied);
    ("repl_fence_timeouts", string_of_int s.s_fence_timeouts);
    ("latency_us_p999", f s.s_latency.Tel.Metrics.p999);
    ("latency_us_max", f s.s_latency.Tel.Metrics.p_max);
    (* txn/index fields append after everything historical, same
       positional-compatibility rule as above *)
    ("getv", string_of_int s.s_getv);
    ("cas", string_of_int s.s_cas);
    ("cas_conflicts", string_of_int s.s_cas_conflicts);
    ("txns", string_of_int s.s_txns);
    ("txn_commits", string_of_int s.s_txn_commits);
    ("txn_aborts", string_of_int s.s_txn_aborts);
    ("scans", string_of_int s.s_scans);
    ("scan_items", string_of_int s.s_scan_items);
    (* sharding fields (ISSUE 10), appended last *)
    ("shards", string_of_int s.s_shards);
    ("xshard", string_of_int s.s_xshard);
    ("fd_cap", string_of_int s.s_fd_cap);
    ("conns_rejected", string_of_int s.s_conns_rejected);
  ]

let () =
  stats_fields_ref := stats_fields;
  drain_ref := drain
