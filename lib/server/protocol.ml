(* Incremental parser/printer for the memcached-lite text protocol. Both
   directions are line-oriented except for the data blocks of [set] and
   [VALUE], whose length is announced on the preceding line — so the
   parser is a two-state machine (awaiting a line / awaiting a block) over
   a growable byte buffer, and never blocks: it consumes what it can and
   keeps the rest for the next feed. *)

(* Transaction ops travel on the wire exactly as the txn layer executes
   them; the re-export keeps the constructors in scope here. *)
type txn_op = Privagic_txn.Txn.op =
  | T_get of int
  | T_set of int * string
  | T_del of int
  | T_cas of int * int * string

type txn_result = Privagic_txn.Txn.op_result =
  | R_value of string option
  | R_stored
  | R_deleted
  | R_not_found

type request =
  | Get of int
  | Set of int * string
  | Del of int
  | Getv of int (* get with version, for CAS round trips *)
  | Cas of { c_key : int; c_ver : int; c_val : string }
  | Scan of { sc_start : int; sc_stop : int; sc_limit : int }
  | Txn of txn_op list (* txn ... exec *)
  | Stats
  | Stats_metrics
  | Quit
  | Shutdown
  | Repl of { r_sync : bool; r_from : int }

(* A scan item carries value bytes only when the indexed value is
   unprotected ("U"): secret-colored entries answer with key and
   version alone (SKEY), never with data. *)
type scan_item = { si_key : int; si_ver : int; si_val : string option }

type response =
  | Value of int * string
  | Miss
  | Stored
  | Deleted
  | Not_found
  | Version of { v_key : int; v_ver : int; v_val : string option }
      (* getv reply; [None] = miss (VMISS line) *)
  | Cas_conflict of int (* current version: the first writer won *)
  | Scan_reply of scan_item list
  | Txn_reply of txn_result list
  | Txn_abort of { ta_key : int; ta_expected : int; ta_found : int }
  | Stats_reply of (string * string) list
  | Metrics_reply of string
      (* Prometheus exposition text ("\n"-terminated lines), closed by
         an END line on the wire *)
  | Busy
  | Error_msg of string
  | Ok_msg

let max_value_len = 64 * 1024
let max_scan_limit = 1024
let max_txn_ops = 64

(* ------------------------------------------------------------------ *)
(* shared incremental line scanner *)

(* Accumulated unconsumed input. [start] avoids re-copying on every
   consume; the buffer is compacted when the dead prefix dominates. *)
type ibuf = { mutable data : Bytes.t; mutable start : int; mutable len : int }

let ibuf () = { data = Bytes.create 4096; start = 0; len = 0 }

let ibuf_add b (src : Bytes.t) n =
  if b.start > 0 && (b.start > 4096 || b.len = 0) then begin
    Bytes.blit b.data b.start b.data 0 b.len;
    b.start <- 0
  end;
  let need = b.start + b.len + n in
  if need > Bytes.length b.data then begin
    let data = Bytes.create (max need (2 * Bytes.length b.data)) in
    Bytes.blit b.data b.start data 0 b.len;
    b.data <- data;
    b.start <- 0
  end;
  Bytes.blit src 0 b.data (b.start + b.len) n;
  b.len <- b.len + n

(* Next complete line, without its terminator (accepts \r\n and \n). *)
let ibuf_line b =
  let rec find i =
    if i >= b.start + b.len then None
    else if Bytes.get b.data i = '\n' then Some i
    else find (i + 1)
  in
  match find b.start with
  | None -> None
  | Some nl ->
    let stop = if nl > b.start && Bytes.get b.data (nl - 1) = '\r' then nl - 1 else nl in
    let line = Bytes.sub_string b.data b.start (stop - b.start) in
    b.len <- b.len - (nl + 1 - b.start);
    b.start <- nl + 1;
    Some line

(* [n] raw bytes followed by a line terminator, or None until available. *)
let ibuf_block b n =
  if b.len < n + 1 then None
  else
    let term_len =
      if Bytes.get b.data (b.start + n) = '\r' then
        if b.len >= n + 2 && Bytes.get b.data (b.start + n + 1) = '\n' then 2
        else -1 (* \r arrived, \n still in flight *)
      else if Bytes.get b.data (b.start + n) = '\n' then 1
      else -2 (* malformed: data not followed by a terminator *)
    in
    if term_len = -1 then None
    else if term_len = -2 then Some None
    else begin
      let block = Bytes.sub_string b.data b.start n in
      b.len <- b.len - (n + term_len);
      b.start <- b.start + n + term_len;
      Some (Some block)
    end

let split_words s =
  String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let key_of s =
  match int_of_string_opt s with
  | Some k when k >= 0 -> Some k
  | _ -> None

(* ------------------------------------------------------------------ *)
(* request side *)

(* Which txn op line a pending data block belongs to. *)
type tpending = P_set of int | P_cas of int * int

type rstate =
  | Cmd
  | Data of int * int (* key, remaining value length *)
  | Cas_data of int * int * int (* key, expected version, length *)
  | Tcmd of txn_op list (* inside txn ... exec; ops reversed *)
  | Tdata of txn_op list * tpending * int

type reader = { rb : ibuf; mutable rstate : rstate }

let reader () = { rb = ibuf (); rstate = Cmd }

let feed r buf n =
  ibuf_add r.rb buf n;
  let out = ref [] in
  let emit e = out := e :: !out in
  let rec go () =
    match r.rstate with
    | Data (key, len) -> (
      match ibuf_block r.rb len with
      | None -> ()
      | Some None ->
        r.rstate <- Cmd;
        emit (`Bad "bad data chunk");
        go ()
      | Some (Some v) ->
        r.rstate <- Cmd;
        emit (`Req (Set (key, v)));
        go ())
    | Cas_data (key, ver, len) -> (
      match ibuf_block r.rb len with
      | None -> ()
      | Some None ->
        r.rstate <- Cmd;
        emit (`Bad "bad data chunk");
        go ()
      | Some (Some v) ->
        r.rstate <- Cmd;
        emit (`Req (Cas { c_key = key; c_ver = ver; c_val = v }));
        go ())
    | Tdata (ops, pending, len) -> (
      match ibuf_block r.rb len with
      | None -> ()
      | Some None ->
        r.rstate <- Cmd;
        emit (`Bad "bad data chunk");
        go ()
      | Some (Some v) ->
        let op =
          match pending with
          | P_set k -> T_set (k, v)
          | P_cas (k, ver) -> T_cas (k, ver, v)
        in
        r.rstate <- Tcmd (op :: ops);
        go ())
    | Tcmd ops -> (
      match ibuf_line r.rb with
      | None -> ()
      | Some line ->
        (match split_words line with
        | [] -> ()
        | [ "exec" ] ->
          r.rstate <- Cmd;
          emit (`Req (Txn (List.rev ops)))
        | _ when List.length ops >= max_txn_ops ->
          r.rstate <- Cmd;
          emit (`Bad "txn too long")
        | [ "t"; "get"; k ] -> (
          match key_of k with
          | Some k -> r.rstate <- Tcmd (T_get k :: ops)
          | None ->
            r.rstate <- Cmd;
            emit (`Bad "bad key"))
        | [ "t"; "del"; k ] -> (
          match key_of k with
          | Some k -> r.rstate <- Tcmd (T_del k :: ops)
          | None ->
            r.rstate <- Cmd;
            emit (`Bad "bad key"))
        | [ "t"; "set"; k; n ] -> (
          match (key_of k, int_of_string_opt n) with
          | Some k, Some n when n >= 0 && n <= max_value_len ->
            r.rstate <- Tdata (ops, P_set k, n)
          | _ ->
            r.rstate <- Cmd;
            emit (`Bad "bad txn op"))
        | [ "t"; "cas"; k; ver; n ] -> (
          match (key_of k, int_of_string_opt ver, int_of_string_opt n) with
          | Some k, Some ver, Some n when ver >= 0 && n >= 0 && n <= max_value_len
            ->
            r.rstate <- Tdata (ops, P_cas (k, ver), n)
          | _ ->
            r.rstate <- Cmd;
            emit (`Bad "bad txn op"))
        | _ ->
          (* any other line aborts the accumulation: the connection is
             back at the command level, nothing was executed *)
          r.rstate <- Cmd;
          emit (`Bad "bad txn op"));
        go ())
    | Cmd -> (
      match ibuf_line r.rb with
      | None -> ()
      | Some line ->
        (match split_words line with
        | [] -> () (* stray blank line: ignore, as memcached does *)
        | [ "get"; k ] -> (
          match key_of k with
          | Some k -> emit (`Req (Get k))
          | None -> emit (`Bad "bad key"))
        | [ "del"; k ] -> (
          match key_of k with
          | Some k -> emit (`Req (Del k))
          | None -> emit (`Bad "bad key"))
        | [ "set"; k; n ] -> (
          match (key_of k, int_of_string_opt n) with
          | Some k, Some n when n >= 0 && n <= max_value_len ->
            r.rstate <- Data (k, n)
          | Some _, Some n when n > max_value_len ->
            emit (`Bad "value too large")
          | _ -> emit (`Bad "bad set command"))
        | [ "getv"; k ] -> (
          match key_of k with
          | Some k -> emit (`Req (Getv k))
          | None -> emit (`Bad "bad key"))
        | [ "cas"; k; ver; n ] -> (
          match (key_of k, int_of_string_opt ver, int_of_string_opt n) with
          | Some k, Some ver, Some n when ver >= 0 && n >= 0 && n <= max_value_len
            ->
            r.rstate <- Cas_data (k, ver, n)
          | Some _, Some ver, Some n when ver >= 0 && n > max_value_len ->
            emit (`Bad "value too large")
          | _ -> emit (`Bad "bad cas command"))
        | [ "scan"; a; b; l ] -> (
          match (key_of a, key_of b, int_of_string_opt l) with
          | Some a, Some b, Some l when l >= 1 && l <= max_scan_limit ->
            emit (`Req (Scan { sc_start = a; sc_stop = b; sc_limit = l }))
          | _ -> emit (`Bad "bad scan command"))
        | [ "txn" ] -> r.rstate <- Tcmd []
        | [ "exec" ] -> emit (`Bad "exec outside txn")
        | [ "stats" ] -> emit (`Req Stats)
        | [ "stats"; "metrics" ] -> emit (`Req Stats_metrics)
        | [ "quit" ] -> emit (`Req Quit)
        | [ "shutdown" ] -> emit (`Req Shutdown)
        | [ "repl"; mode; from ] -> (
          match (mode, int_of_string_opt from) with
          | ("sync" | "async"), Some from_seq when from_seq >= 1 ->
            emit (`Req (Repl { r_sync = mode = "sync"; r_from = from_seq }))
          | _ -> emit (`Bad "bad repl handshake"))
        | w :: _ -> emit (`Bad ("unknown command " ^ w)));
        go ())
  in
  go ();
  List.rev !out

let render = function
  | Value (k, v) ->
    Printf.sprintf "VALUE %d %d\r\n%s\r\nEND\r\n" k (String.length v) v
  | Miss -> "END\r\n"
  | Stored -> "STORED\r\n"
  | Deleted -> "DELETED\r\n"
  | Not_found -> "NOT_FOUND\r\n"
  | Version { v_key; v_ver; v_val = Some v } ->
    Printf.sprintf "VERSION %d %d %d\r\n%s\r\nEND\r\n" v_key v_ver
      (String.length v) v
  | Version { v_key; v_ver; v_val = None } ->
    Printf.sprintf "VMISS %d %d\r\n" v_key v_ver
  | Cas_conflict cur -> Printf.sprintf "CAS_CONFLICT %d\r\n" cur
  | Scan_reply items ->
    let b = Buffer.create 256 in
    Buffer.add_string b (Printf.sprintf "SCAN %d\r\n" (List.length items));
    List.iter
      (fun { si_key; si_ver; si_val } ->
        match si_val with
        | Some v ->
          Buffer.add_string b
            (Printf.sprintf "SVAL %d %d %d\r\n%s\r\n" si_key si_ver
               (String.length v) v)
        | None ->
          (* secret-colored entry: key and version only *)
          Buffer.add_string b (Printf.sprintf "SKEY %d %d\r\n" si_key si_ver))
      items;
    Buffer.add_string b "END\r\n";
    Buffer.contents b
  | Txn_reply results ->
    let b = Buffer.create 128 in
    Buffer.add_string b (Printf.sprintf "TXN %d\r\n" (List.length results));
    List.iter
      (fun res ->
        Buffer.add_string b
          (match res with
          | R_value (Some v) ->
            Printf.sprintf "RVAL %d\r\n%s\r\n" (String.length v) v
          | R_value None -> "RMISS\r\n"
          | R_stored -> "RSTORED\r\n"
          | R_deleted -> "RDELETED\r\n"
          | R_not_found -> "RNOTFOUND\r\n"))
      results;
    Buffer.add_string b "END\r\n";
    Buffer.contents b
  | Txn_abort { ta_key; ta_expected; ta_found } ->
    Printf.sprintf "TXN_ABORT %d %d %d\r\n" ta_key ta_expected ta_found
  | Stats_reply kvs ->
    String.concat ""
      (List.map (fun (k, v) -> Printf.sprintf "STAT %s %s\r\n" k v) kvs)
    ^ "END\r\n"
  | Metrics_reply text ->
    (* exposition lines pass through verbatim; END closes the reply like
       a stats block so line-oriented clients know where to stop *)
    let text =
      if text = "" || String.ends_with ~suffix:"\n" text then text
      else text ^ "\n"
    in
    text ^ "END\r\n"
  | Busy -> "SERVER_BUSY\r\n"
  | Error_msg m -> Printf.sprintf "CLIENT_ERROR %s\r\n" m
  | Ok_msg -> "OK\r\n"

(* ------------------------------------------------------------------ *)
(* response side (load generator) *)

type pstate =
  | Line                          (* awaiting any response line *)
  | Vdata of int * int            (* VALUE seen: key, length *)
  | Vend of int * string          (* data read: awaiting END *)
  | Gdata of int * int * int      (* VERSION seen: key, version, length *)
  | Gend of int * int * string    (* version data read: awaiting END *)
  | Scn of scan_item list         (* inside SCAN ... END *)
  | Scn_data of scan_item list * int * int * int (* SVAL block pending *)
  | Txr of txn_result list        (* inside TXN ... END *)
  | Txr_data of txn_result list * int (* RVAL block pending *)
  | Stat of (string * string) list

type resp_reader = { pb : ibuf; mutable pstate : pstate }

let resp_reader () = { pb = ibuf (); pstate = Line }

let feed_resp p buf n =
  ibuf_add p.pb buf n;
  let out = ref [] in
  let emit r = out := r :: !out in
  let rec go () =
    match p.pstate with
    | Vdata (key, len) -> (
      match ibuf_block p.pb len with
      | None -> ()
      | Some None ->
        p.pstate <- Line;
        emit (Error_msg "malformed VALUE block");
        go ()
      | Some (Some v) ->
        p.pstate <- Vend (key, v);
        go ())
    | Gdata (key, ver, len) -> (
      match ibuf_block p.pb len with
      | None -> ()
      | Some None ->
        p.pstate <- Line;
        emit (Error_msg "malformed VERSION block");
        go ()
      | Some (Some v) ->
        p.pstate <- Gend (key, ver, v);
        go ())
    | Scn_data (items, key, ver, len) -> (
      match ibuf_block p.pb len with
      | None -> ()
      | Some None ->
        p.pstate <- Line;
        emit (Error_msg "malformed SVAL block");
        go ()
      | Some (Some v) ->
        p.pstate <-
          Scn ({ si_key = key; si_ver = ver; si_val = Some v } :: items);
        go ())
    | Txr_data (results, len) -> (
      match ibuf_block p.pb len with
      | None -> ()
      | Some None ->
        p.pstate <- Line;
        emit (Error_msg "malformed RVAL block");
        go ()
      | Some (Some v) ->
        p.pstate <- Txr (R_value (Some v) :: results);
        go ())
    | st -> (
      match ibuf_line p.pb with
      | None -> ()
      | Some line ->
        (match (st, split_words line) with
        | Vend (k, v), [ "END" ] ->
          p.pstate <- Line;
          emit (Value (k, v))
        | Vend _, _ ->
          p.pstate <- Line;
          emit (Error_msg "missing END after VALUE")
        | Gend (k, ver, v), [ "END" ] ->
          p.pstate <- Line;
          emit (Version { v_key = k; v_ver = ver; v_val = Some v })
        | Gend _, _ ->
          p.pstate <- Line;
          emit (Error_msg "missing END after VERSION")
        | Scn items, [ "END" ] ->
          p.pstate <- Line;
          emit (Scan_reply (List.rev items))
        | Scn items, [ "SKEY"; k; ver ] -> (
          match (key_of k, int_of_string_opt ver) with
          | Some k, Some ver when ver >= 0 ->
            p.pstate <- Scn ({ si_key = k; si_ver = ver; si_val = None } :: items)
          | _ ->
            p.pstate <- Line;
            emit (Error_msg ("bad SKEY line: " ^ line)))
        | Scn items, [ "SVAL"; k; ver; n ] -> (
          match (key_of k, int_of_string_opt ver, int_of_string_opt n) with
          | Some k, Some ver, Some n when ver >= 0 && n >= 0 && n <= max_value_len
            ->
            p.pstate <- Scn_data (items, k, ver, n)
          | _ ->
            p.pstate <- Line;
            emit (Error_msg ("bad SVAL line: " ^ line)))
        | Scn _, _ ->
          p.pstate <- Line;
          emit (Error_msg ("unexpected line in scan: " ^ line))
        | Txr results, [ "END" ] ->
          p.pstate <- Line;
          emit (Txn_reply (List.rev results))
        | Txr results, [ "RVAL"; n ] -> (
          match int_of_string_opt n with
          | Some n when n >= 0 && n <= max_value_len ->
            p.pstate <- Txr_data (results, n)
          | _ ->
            p.pstate <- Line;
            emit (Error_msg ("bad RVAL line: " ^ line)))
        | Txr results, [ "RMISS" ] -> p.pstate <- Txr (R_value None :: results)
        | Txr results, [ "RSTORED" ] -> p.pstate <- Txr (R_stored :: results)
        | Txr results, [ "RDELETED" ] -> p.pstate <- Txr (R_deleted :: results)
        | Txr results, [ "RNOTFOUND" ] ->
          p.pstate <- Txr (R_not_found :: results)
        | Txr _, _ ->
          p.pstate <- Line;
          emit (Error_msg ("unexpected line in txn reply: " ^ line))
        | Stat kvs, [ "END" ] ->
          p.pstate <- Line;
          emit (Stats_reply (List.rev kvs))
        | Stat kvs, "STAT" :: k :: rest ->
          p.pstate <- Stat ((k, String.concat " " rest) :: kvs)
        | Stat kvs, _ ->
          p.pstate <- Line;
          emit (Stats_reply (List.rev kvs));
          emit (Error_msg ("unexpected line in stats: " ^ line))
        | Line, [ "VALUE"; k; n ] -> (
          match (key_of k, int_of_string_opt n) with
          | Some k, Some n when n >= 0 && n <= max_value_len ->
            p.pstate <- Vdata (k, n)
          | _ -> emit (Error_msg ("bad VALUE line: " ^ line)))
        | Line, [ "VERSION"; k; ver; n ] -> (
          match (key_of k, int_of_string_opt ver, int_of_string_opt n) with
          | Some k, Some ver, Some n when ver >= 0 && n >= 0 && n <= max_value_len
            ->
            p.pstate <- Gdata (k, ver, n)
          | _ -> emit (Error_msg ("bad VERSION line: " ^ line)))
        | Line, [ "VMISS"; k; ver ] -> (
          match (key_of k, int_of_string_opt ver) with
          | Some k, Some ver when ver >= 0 ->
            emit (Version { v_key = k; v_ver = ver; v_val = None })
          | _ -> emit (Error_msg ("bad VMISS line: " ^ line)))
        | Line, [ "CAS_CONFLICT"; c ] -> (
          match int_of_string_opt c with
          | Some c when c >= 0 -> emit (Cas_conflict c)
          | _ -> emit (Error_msg ("bad CAS_CONFLICT line: " ^ line)))
        | Line, [ "SCAN"; _n ] -> p.pstate <- Scn []
        | Line, [ "TXN"; _n ] -> p.pstate <- Txr []
        | Line, [ "TXN_ABORT"; k; e; f ] -> (
          match (key_of k, int_of_string_opt e, int_of_string_opt f) with
          | Some k, Some e, Some f when e >= 0 && f >= 0 ->
            emit (Txn_abort { ta_key = k; ta_expected = e; ta_found = f })
          | _ -> emit (Error_msg ("bad TXN_ABORT line: " ^ line)))
        | Line, [ "END" ] -> emit Miss
        | Line, [ "STORED" ] -> emit Stored
        | Line, [ "DELETED" ] -> emit Deleted
        | Line, [ "NOT_FOUND" ] -> emit Not_found
        | Line, [ "SERVER_BUSY" ] -> emit Busy
        | Line, [ "OK" ] -> emit Ok_msg
        | Line, "STAT" :: k :: rest ->
          p.pstate <- Stat [ (k, String.concat " " rest) ]
        | Line, "CLIENT_ERROR" :: rest ->
          emit (Error_msg (String.concat " " rest))
        | Line, [] -> ()
        | Line, _ -> emit (Error_msg ("unknown response: " ^ line))
        | (Vdata _ | Gdata _ | Scn_data _ | Txr_data _), _ ->
          assert false (* consumed by the outer match *));
        go ())
  in
  go ();
  List.rev !out

let render_request = function
  | Get k -> Printf.sprintf "get %d\r\n" k
  | Set (k, v) -> Printf.sprintf "set %d %d\r\n%s\r\n" k (String.length v) v
  | Del k -> Printf.sprintf "del %d\r\n" k
  | Getv k -> Printf.sprintf "getv %d\r\n" k
  | Cas { c_key; c_ver; c_val } ->
    Printf.sprintf "cas %d %d %d\r\n%s\r\n" c_key c_ver (String.length c_val)
      c_val
  | Scan { sc_start; sc_stop; sc_limit } ->
    Printf.sprintf "scan %d %d %d\r\n" sc_start sc_stop sc_limit
  | Txn ops ->
    let b = Buffer.create 128 in
    Buffer.add_string b "txn\r\n";
    List.iter
      (fun op ->
        Buffer.add_string b
          (match op with
          | T_get k -> Printf.sprintf "t get %d\r\n" k
          | T_set (k, v) ->
            Printf.sprintf "t set %d %d\r\n%s\r\n" k (String.length v) v
          | T_del k -> Printf.sprintf "t del %d\r\n" k
          | T_cas (k, ver, v) ->
            Printf.sprintf "t cas %d %d %d\r\n%s\r\n" k ver (String.length v) v))
      ops;
    Buffer.add_string b "exec\r\n";
    Buffer.contents b
  | Stats -> "stats\r\n"
  | Stats_metrics -> "stats metrics\r\n"
  | Quit -> "quit\r\n"
  | Shutdown -> "shutdown\r\n"
  | Repl { r_sync; r_from } ->
    Printf.sprintf "repl %s %d\r\n" (if r_sync then "sync" else "async") r_from
