(* Incremental parser/printer for the memcached-lite text protocol. Both
   directions are line-oriented except for the data blocks of [set] and
   [VALUE], whose length is announced on the preceding line — so the
   parser is a two-state machine (awaiting a line / awaiting a block) over
   a growable byte buffer, and never blocks: it consumes what it can and
   keeps the rest for the next feed. *)

type request =
  | Get of int
  | Set of int * string
  | Del of int
  | Stats
  | Stats_metrics
  | Quit
  | Shutdown
  | Repl of { r_sync : bool; r_from : int }

type response =
  | Value of int * string
  | Miss
  | Stored
  | Deleted
  | Not_found
  | Stats_reply of (string * string) list
  | Metrics_reply of string
      (* Prometheus exposition text ("\n"-terminated lines), closed by
         an END line on the wire *)
  | Busy
  | Error_msg of string
  | Ok_msg

let max_value_len = 64 * 1024

(* ------------------------------------------------------------------ *)
(* shared incremental line scanner *)

(* Accumulated unconsumed input. [start] avoids re-copying on every
   consume; the buffer is compacted when the dead prefix dominates. *)
type ibuf = { mutable data : Bytes.t; mutable start : int; mutable len : int }

let ibuf () = { data = Bytes.create 4096; start = 0; len = 0 }

let ibuf_add b (src : Bytes.t) n =
  if b.start > 0 && (b.start > 4096 || b.len = 0) then begin
    Bytes.blit b.data b.start b.data 0 b.len;
    b.start <- 0
  end;
  let need = b.start + b.len + n in
  if need > Bytes.length b.data then begin
    let data = Bytes.create (max need (2 * Bytes.length b.data)) in
    Bytes.blit b.data b.start data 0 b.len;
    b.data <- data;
    b.start <- 0
  end;
  Bytes.blit src 0 b.data (b.start + b.len) n;
  b.len <- b.len + n

(* Next complete line, without its terminator (accepts \r\n and \n). *)
let ibuf_line b =
  let rec find i =
    if i >= b.start + b.len then None
    else if Bytes.get b.data i = '\n' then Some i
    else find (i + 1)
  in
  match find b.start with
  | None -> None
  | Some nl ->
    let stop = if nl > b.start && Bytes.get b.data (nl - 1) = '\r' then nl - 1 else nl in
    let line = Bytes.sub_string b.data b.start (stop - b.start) in
    b.len <- b.len - (nl + 1 - b.start);
    b.start <- nl + 1;
    Some line

(* [n] raw bytes followed by a line terminator, or None until available. *)
let ibuf_block b n =
  if b.len < n + 1 then None
  else
    let term_len =
      if Bytes.get b.data (b.start + n) = '\r' then
        if b.len >= n + 2 && Bytes.get b.data (b.start + n + 1) = '\n' then 2
        else -1 (* \r arrived, \n still in flight *)
      else if Bytes.get b.data (b.start + n) = '\n' then 1
      else -2 (* malformed: data not followed by a terminator *)
    in
    if term_len = -1 then None
    else if term_len = -2 then Some None
    else begin
      let block = Bytes.sub_string b.data b.start n in
      b.len <- b.len - (n + term_len);
      b.start <- b.start + n + term_len;
      Some (Some block)
    end

let split_words s =
  String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let key_of s =
  match int_of_string_opt s with
  | Some k when k >= 0 -> Some k
  | _ -> None

(* ------------------------------------------------------------------ *)
(* request side *)

type rstate = Cmd | Data of int * int (* key, remaining value length *)

type reader = { rb : ibuf; mutable rstate : rstate }

let reader () = { rb = ibuf (); rstate = Cmd }

let feed r buf n =
  ibuf_add r.rb buf n;
  let out = ref [] in
  let emit e = out := e :: !out in
  let rec go () =
    match r.rstate with
    | Data (key, len) -> (
      match ibuf_block r.rb len with
      | None -> ()
      | Some None ->
        r.rstate <- Cmd;
        emit (`Bad "bad data chunk");
        go ()
      | Some (Some v) ->
        r.rstate <- Cmd;
        emit (`Req (Set (key, v)));
        go ())
    | Cmd -> (
      match ibuf_line r.rb with
      | None -> ()
      | Some line ->
        (match split_words line with
        | [] -> () (* stray blank line: ignore, as memcached does *)
        | [ "get"; k ] -> (
          match key_of k with
          | Some k -> emit (`Req (Get k))
          | None -> emit (`Bad "bad key"))
        | [ "del"; k ] -> (
          match key_of k with
          | Some k -> emit (`Req (Del k))
          | None -> emit (`Bad "bad key"))
        | [ "set"; k; n ] -> (
          match (key_of k, int_of_string_opt n) with
          | Some k, Some n when n >= 0 && n <= max_value_len ->
            r.rstate <- Data (k, n)
          | Some _, Some n when n > max_value_len ->
            emit (`Bad "value too large")
          | _ -> emit (`Bad "bad set command"))
        | [ "stats" ] -> emit (`Req Stats)
        | [ "stats"; "metrics" ] -> emit (`Req Stats_metrics)
        | [ "quit" ] -> emit (`Req Quit)
        | [ "shutdown" ] -> emit (`Req Shutdown)
        | [ "repl"; mode; from ] -> (
          match (mode, int_of_string_opt from) with
          | ("sync" | "async"), Some from_seq when from_seq >= 1 ->
            emit (`Req (Repl { r_sync = mode = "sync"; r_from = from_seq }))
          | _ -> emit (`Bad "bad repl handshake"))
        | w :: _ -> emit (`Bad ("unknown command " ^ w)));
        go ())
  in
  go ();
  List.rev !out

let render = function
  | Value (k, v) ->
    Printf.sprintf "VALUE %d %d\r\n%s\r\nEND\r\n" k (String.length v) v
  | Miss -> "END\r\n"
  | Stored -> "STORED\r\n"
  | Deleted -> "DELETED\r\n"
  | Not_found -> "NOT_FOUND\r\n"
  | Stats_reply kvs ->
    String.concat ""
      (List.map (fun (k, v) -> Printf.sprintf "STAT %s %s\r\n" k v) kvs)
    ^ "END\r\n"
  | Metrics_reply text ->
    (* exposition lines pass through verbatim; END closes the reply like
       a stats block so line-oriented clients know where to stop *)
    let text =
      if text = "" || String.ends_with ~suffix:"\n" text then text
      else text ^ "\n"
    in
    text ^ "END\r\n"
  | Busy -> "SERVER_BUSY\r\n"
  | Error_msg m -> Printf.sprintf "CLIENT_ERROR %s\r\n" m
  | Ok_msg -> "OK\r\n"

(* ------------------------------------------------------------------ *)
(* response side (load generator) *)

type pstate =
  | Line                          (* awaiting any response line *)
  | Vdata of int * int            (* VALUE seen: key, length *)
  | Vend of int * string          (* data read: awaiting END *)
  | Stat of (string * string) list

type resp_reader = { pb : ibuf; mutable pstate : pstate }

let resp_reader () = { pb = ibuf (); pstate = Line }

let feed_resp p buf n =
  ibuf_add p.pb buf n;
  let out = ref [] in
  let emit r = out := r :: !out in
  let rec go () =
    match p.pstate with
    | Vdata (key, len) -> (
      match ibuf_block p.pb len with
      | None -> ()
      | Some None ->
        p.pstate <- Line;
        emit (Error_msg "malformed VALUE block");
        go ()
      | Some (Some v) ->
        p.pstate <- Vend (key, v);
        go ())
    | st -> (
      match ibuf_line p.pb with
      | None -> ()
      | Some line ->
        (match (st, split_words line) with
        | Vend (k, v), [ "END" ] ->
          p.pstate <- Line;
          emit (Value (k, v))
        | Vend _, _ ->
          p.pstate <- Line;
          emit (Error_msg "missing END after VALUE")
        | Stat kvs, [ "END" ] ->
          p.pstate <- Line;
          emit (Stats_reply (List.rev kvs))
        | Stat kvs, "STAT" :: k :: rest ->
          p.pstate <- Stat ((k, String.concat " " rest) :: kvs)
        | Stat kvs, _ ->
          p.pstate <- Line;
          emit (Stats_reply (List.rev kvs));
          emit (Error_msg ("unexpected line in stats: " ^ line))
        | Line, [ "VALUE"; k; n ] -> (
          match (key_of k, int_of_string_opt n) with
          | Some k, Some n when n >= 0 && n <= max_value_len ->
            p.pstate <- Vdata (k, n)
          | _ -> emit (Error_msg ("bad VALUE line: " ^ line)))
        | Line, [ "END" ] -> emit Miss
        | Line, [ "STORED" ] -> emit Stored
        | Line, [ "DELETED" ] -> emit Deleted
        | Line, [ "NOT_FOUND" ] -> emit Not_found
        | Line, [ "SERVER_BUSY" ] -> emit Busy
        | Line, [ "OK" ] -> emit Ok_msg
        | Line, "STAT" :: k :: rest ->
          p.pstate <- Stat [ (k, String.concat " " rest) ]
        | Line, "CLIENT_ERROR" :: rest ->
          emit (Error_msg (String.concat " " rest))
        | Line, [] -> ()
        | Line, _ -> emit (Error_msg ("unknown response: " ^ line))
        | Vdata _, _ -> assert false (* consumed by the outer match *));
        go ())
  in
  go ();
  List.rev !out

let render_request = function
  | Get k -> Printf.sprintf "get %d\r\n" k
  | Set (k, v) -> Printf.sprintf "set %d %d\r\n%s\r\n" k (String.length v) v
  | Del k -> Printf.sprintf "del %d\r\n" k
  | Stats -> "stats\r\n"
  | Stats_metrics -> "stats metrics\r\n"
  | Quit -> "quit\r\n"
  | Shutdown -> "shutdown\r\n"
  | Repl { r_sync; r_from } ->
    Printf.sprintf "repl %s %d\r\n" (if r_sync then "sync" else "async") r_from
