(** The memcached-lite text protocol of the serving layer.

    Requests are CRLF- (or LF-) terminated lines; [set] carries a data
    block of exactly the announced length after its command line, as in
    memcached's storage commands:

    {v
    get <key>                          VALUE <key> <len>\r\n<data>\r\nEND
                                       (miss: END)
    set <key> <len>\r\n<data>          STORED
    del <key>                          DELETED | NOT_FOUND
    stats                              STAT <name> <value>... END
    stats metrics                      Prometheus exposition text... END
    quit                               (connection closed)
    shutdown                           OK, then the server drains
    v}

    Keys are non-negative integers (the partitioned programs' entry
    points take integer keys). Above the configured queue high-water
    mark a shedding server answers [SERVER_BUSY]; malformed input gets
    [CLIENT_ERROR <msg>] without closing the connection.

    Both sides of the protocol parse incrementally: {!reader} consumes
    request bytes (server side), {!resp_reader} consumes response bytes
    (load-generator side). Neither ever blocks — they hold partial input
    until more bytes are fed. *)

type request =
  | Get of int
  | Set of int * string  (** key, exact value bytes *)
  | Del of int
  | Stats
  | Stats_metrics
      (** [stats metrics] — live metrics exposition (lib/obs): the reply
          is the server registry rendered in Prometheus text format,
          closed by an END line *)
  | Quit
  | Shutdown
  | Repl of { r_sync : bool; r_from : int }
      (** [repl <sync|async> <from_seq>] — replication handshake: the
          sender is a replica asking for the delta stream starting at
          [r_from] (1-based). The server detaches the connection from the
          request loop and hands it to the shipper; the replica must send
          nothing further until it has received frames. *)

type response =
  | Value of int * string  (** hit: key, stored bytes *)
  | Miss
  | Stored
  | Deleted
  | Not_found
  | Stats_reply of (string * string) list
  | Metrics_reply of string
      (** Prometheus exposition text, sent verbatim ("\n" line endings)
          and closed by [END\r\n]. Not parsed by {!resp_reader} — probes
          read the raw stream up to the END line. *)
  | Busy                   (** SERVER_BUSY: shed above the high-water mark *)
  | Error_msg of string    (** CLIENT_ERROR *)
  | Ok_msg

(** Values longer than this are rejected at parse time
    ([CLIENT_ERROR value too large]), bounding per-connection memory. *)
val max_value_len : int

(** {1 Server side: request parsing} *)

type reader

val reader : unit -> reader

(** Feed [len] bytes from [buf]; returns the complete requests (and
    protocol errors, which the server answers in order) recognized so
    far, in arrival order. Partial input is retained. *)
val feed : reader -> bytes -> int -> [ `Req of request | `Bad of string ] list

val render : response -> string

(** {1 Client side: response parsing} *)

type resp_reader

val resp_reader : unit -> resp_reader

val feed_resp : resp_reader -> bytes -> int -> response list

(** Render a request on the wire (load generator / tests). *)
val render_request : request -> string
