(** The memcached-lite text protocol of the serving layer.

    Requests are CRLF- (or LF-) terminated lines; [set] carries a data
    block of exactly the announced length after its command line, as in
    memcached's storage commands:

    {v
    get <key>                          VALUE <key> <len>\r\n<data>\r\nEND
                                       (miss: END)
    set <key> <len>\r\n<data>          STORED
    del <key>                          DELETED | NOT_FOUND
    getv <key>                         VERSION <key> <ver> <len>\r\n<data>\r\nEND
                                       (miss: VMISS <key> 0)
    cas <key> <ver> <len>\r\n<data>    STORED | CAS_CONFLICT <cur> | NOT_FOUND
    scan <start> <stop> <limit>        SCAN <n>, then per item
                                       SVAL <key> <ver> <len>\r\n<data>  (color U)
                                       SKEY <key> <ver>                  (secret)
                                       closed by END
    txn                                TXN <n>, then per op
      t get <key>                        RVAL <len>\r\n<data> | RMISS
      t set <key> <len>\r\n<data>        RSTORED
      t del <key>                        RDELETED | RNOTFOUND
      t cas <key> <ver> <len>\r\n<data>  RSTORED
    exec                               closed by END; on a failed CAS
                                       guard: TXN_ABORT <key> <exp> <found>
    stats                              STAT <name> <value>... END
    stats metrics                      Prometheus exposition text... END
    quit                               (connection closed)
    shutdown                           OK, then the server drains
    v}

    Keys are non-negative integers (the partitioned programs' entry
    points take integer keys). Above the configured queue high-water
    mark a shedding server answers [SERVER_BUSY]; malformed input gets
    [CLIENT_ERROR <msg>] without closing the connection.

    Both sides of the protocol parse incrementally: {!reader} consumes
    request bytes (server side), {!resp_reader} consumes response bytes
    (load-generator side). Neither ever blocks — they hold partial input
    until more bytes are fed. *)

(** Transaction ops as they travel on the wire — re-exported from the
    txn layer so the server can hand them straight to the executor. *)
type txn_op = Privagic_txn.Txn.op =
  | T_get of int
  | T_set of int * string
  | T_del of int
  | T_cas of int * int * string  (** key, expected version, value *)

type txn_result = Privagic_txn.Txn.op_result =
  | R_value of string option
  | R_stored
  | R_deleted
  | R_not_found

type request =
  | Get of int
  | Set of int * string  (** key, exact value bytes *)
  | Del of int
  | Getv of int
      (** get with version — the read half of a CAS round trip *)
  | Cas of { c_key : int; c_ver : int; c_val : string }
      (** conditional write: succeeds iff the committed version still
          equals [c_ver] (0 = insert-if-absent) *)
  | Scan of { sc_start : int; sc_stop : int; sc_limit : int }
      (** range scan over the ordered secondary index, inclusive bounds *)
  | Txn of txn_op list
      (** [txn ... exec] — executed atomically at one commit point *)
  | Stats
  | Stats_metrics
      (** [stats metrics] — live metrics exposition (lib/obs): the reply
          is the server registry rendered in Prometheus text format,
          closed by an END line *)
  | Quit
  | Shutdown
  | Repl of { r_sync : bool; r_from : int }
      (** [repl <sync|async> <from_seq>] — replication handshake: the
          sender is a replica asking for the delta stream starting at
          [r_from] (1-based). The server detaches the connection from the
          request loop and hands it to the shipper; the replica must send
          nothing further until it has received frames. *)

(** One range-scan result. [si_val] carries the value bytes only when
    the indexed value is unprotected (color "U"); a secret-colored entry
    answers with key and version alone — the color-inheritance rule for
    index entries, enforced in lib/txn. *)
type scan_item = { si_key : int; si_ver : int; si_val : string option }

type response =
  | Value of int * string  (** hit: key, stored bytes *)
  | Miss
  | Stored
  | Deleted
  | Not_found
  | Version of { v_key : int; v_ver : int; v_val : string option }
      (** getv reply; [None] = miss (VMISS on the wire) *)
  | Cas_conflict of int
      (** the committed version the CAS lost against (first writer wins) *)
  | Scan_reply of scan_item list
  | Txn_reply of txn_result list  (** committed: one result per op *)
  | Txn_abort of { ta_key : int; ta_expected : int; ta_found : int }
      (** a CAS guard failed; nothing was written *)
  | Stats_reply of (string * string) list
  | Metrics_reply of string
      (** Prometheus exposition text, sent verbatim ("\n" line endings)
          and closed by [END\r\n]. Not parsed by {!resp_reader} — probes
          read the raw stream up to the END line. *)
  | Busy                   (** SERVER_BUSY: shed above the high-water mark *)
  | Error_msg of string    (** CLIENT_ERROR *)
  | Ok_msg

(** Values longer than this are rejected at parse time
    ([CLIENT_ERROR value too large]), bounding per-connection memory. *)
val max_value_len : int

(** Scans return at most this many items per request. *)
val max_scan_limit : int

(** Transactions accept at most this many ops between [txn] and [exec]. *)
val max_txn_ops : int

(** {1 Server side: request parsing} *)

type reader

val reader : unit -> reader

(** Feed [len] bytes from [buf]; returns the complete requests (and
    protocol errors, which the server answers in order) recognized so
    far, in arrival order. Partial input is retained. *)
val feed : reader -> bytes -> int -> [ `Req of request | `Bad of string ] list

val render : response -> string

(** {1 Client side: response parsing} *)

type resp_reader

val resp_reader : unit -> resp_reader

val feed_resp : resp_reader -> bytes -> int -> response list

(** Render a request on the wire (load generator / tests). *)
val render_request : request -> string
