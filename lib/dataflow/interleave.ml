(* Concrete interleaving explorer: executes a multi-threaded mini-C program
   under every schedule produced by shifting the spawned threads' start
   offsets, then lets the caller inspect memory. This is the ground-truth
   oracle of the Fig. 3 experiment: it exhibits the interleaving in which
   the sequentially-derived partition leaks the secret, while the secure
   type system rejected the program statically. *)

open Privagic_pir
module Sgx = Privagic_sgx
open Privagic_vm
module Sched = Privagic_runtime.Sched
module Vclock = Privagic_runtime.Vclock

type outcome = {
  offsets : float list;          (* start offset of each spawned thread *)
  globals : (string * int64) list; (* final values of scalar globals *)
  output : string;
}

(* Execute [entry] with spawned threads interleaved at instruction
   granularity; the k-th spawned thread starts at offset [List.nth offsets k]
   (missing offsets = spawn at the spawner's clock). *)
let run (m : Pmodule.t) ~(entry : string) ~(offsets : float list) : outcome =
  let machine =
    Sgx.Machine.create ~cost:Sgx.Cost.unit_steps Sgx.Config.machine_test
  in
  let heap = Heap.create () in
  let layout = Layout.create m Privagic_secure.Mode.Relaxed in
  let sched = Sched.create () in
  let spawn_count = ref 0 in
  let rec hooks : Exec.hooks =
    {
      Exec.h_call =
        (fun ex _i callee args ->
          match Pmodule.find_func ex.Exec.m callee with
          | Some f -> Exec.exec_func ex f args
          | None -> (
            match Externals.dispatch ex ~malloc_zone:Heap.Unsafe callee args with
            | Some r -> r
            | None -> raise (Exec.Trap ("unknown external @" ^ callee))))
      ;
      h_callind =
        (fun ex i fv args ->
          hooks.Exec.h_call ex i (Exec.resolve_func ex fv) args);
      h_spawn = (fun ex _i callee args -> spawn_thread ex callee args);
      h_pre_instr =
        (fun ex _ ->
          (* yield before every instruction so that the scheduler can
             interleave threads at instruction granularity; when this fiber
             resumes, another fiber may have swapped the shared clock — put
             ours back *)
          let mine = ex.Exec.clock in
          Sched.block (fun () -> true) (fun () -> Vclock.get mine);
          ex.Exec.clock <- mine)
      ;
      h_alloca_zone = (fun _ _ -> Heap.Unsafe);
    }
  and spawn_thread ex callee args =
    let k = !spawn_count in
    incr spawn_count;
    let at =
      match List.nth_opt offsets k with
      | Some o -> o
      | None -> (Vclock.get ex.Exec.clock)
    in
    let f = Pmodule.find_func_exn ex.Exec.m callee in
    ignore
      (Sched.spawn sched ~name:(Printf.sprintf "thread-%d:%s" k callee) ~at
         (fun clock ->
           ex.Exec.clock <- clock;
           ignore (Exec.exec_func ex f args)))
  in
  let ex = Exec.create m heap layout machine hooks in
  Exec.init_globals ex (fun _ -> Heap.Unsafe);
  let f = Pmodule.find_func_exn m entry in
  ignore
    (Sched.spawn sched ~name:"main" ~at:0.0 (fun clock ->
         ex.Exec.clock <- clock;
         ignore (Exec.exec_func ex f [||])));
  ignore (Sched.run sched : Sched.outcome);
  let globals =
    List.filter_map
      (fun (g : Pmodule.global) ->
        match g.Pmodule.gty.Ty.desc with
        | Ty.I64 | Ty.I8 | Ty.I1 ->
          let addr = Hashtbl.find ex.Exec.globals g.Pmodule.gname in
          Some (g.Pmodule.gname, Heap.load heap addr (Exec.scalar_size g.Pmodule.gty))
        | _ -> None)
      (Pmodule.globals_sorted m)
  in
  { offsets; globals; output = Buffer.contents ex.Exec.out }

(* Explore schedules by sliding the first spawned thread's start offset and
   return every distinct outcome. *)
let explore (m : Pmodule.t) ~entry ~(max_offset : int) :
    outcome list =
  let outcomes = ref [] in
  for o = 0 to max_offset do
    (* the first thread starts immediately; the second slides across it *)
    let oc = run m ~entry ~offsets:[ 0.0; float_of_int o +. 0.5 ] in
    if
      not
        (List.exists
           (fun prev -> prev.globals = oc.globals && prev.output = oc.output)
           !outcomes)
    then outcomes := oc :: !outcomes
  done;
  List.rev !outcomes

(* Final value of a global in an outcome. *)
let global_value (oc : outcome) name =
  List.assoc_opt name oc.globals
