(* Secondary indexes over the colored store (ISSUE 9 tentpole, part 2).

   Two structures, both living in *unsafe* memory (plain OCaml heap on
   the untrusted side of the partition):

   - an ordered index: one immutable [IntMap] per lane, keyed by the
     primary key, mirroring the server's key-mod-lanes partitioning.
     Range scans merge-iterate the per-lane maps in ascending key
     order, so a scan touches each partition exactly the way the
     executor lanes do.

   - a hash index: a 64-bit FNV-1a fingerprint of the value bytes
     mapping back to the set of primary keys currently holding those
     bytes ("find the accounts whose value equals V").

   The color-inheritance rule: an index entry inherits the color of
   the value it indexes. Since the index itself is unsafe memory, a
   secret-colored value may contribute *nothing derived from its
   bytes* to the index — no cached copy, no fingerprint. Entries for
   secret values therefore carry only (key, version, length), and the
   hash index simply has no entry for them: a secret value is
   structurally unreachable through the unprotected index, not merely
   access-checked. Only values of color "U" (unprotected) are cached
   and fingerprinted. [put] enforces this regardless of what the
   caller passes. *)

module IntMap = Map.Make (Int)

type entry = {
  e_key : int;
  e_version : int;
  e_len : int;
  e_color : string;
  e_value : string option;
      (* [Some bytes] iff [e_color = "U"]; never for secret colors *)
}

type t = {
  lanes : int;
  mutable ordered : entry IntMap.t array; (* slot i holds keys with key mod lanes = i *)
  hash : (int64, unit IntMap.t) Hashtbl.t; (* fingerprint -> key set *)
  fp_of_key : (int, int64) Hashtbl.t; (* reverse map, for maintenance *)
}

let unprotected_color = "U"

(* FNV-1a, 64-bit, over the raw value bytes. *)
let fingerprint (s : string) : int64 =
  let open Int64 in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := logxor !h (of_int (Char.code c));
      h := mul !h 0x100000001b3L)
    s;
  !h

let create ~lanes =
  let lanes = max 1 lanes in
  {
    lanes;
    ordered = Array.make lanes IntMap.empty;
    hash = Hashtbl.create 64;
    fp_of_key = Hashtbl.create 64;
  }

let lane_of t key = key mod t.lanes

let hash_remove t key =
  match Hashtbl.find_opt t.fp_of_key key with
  | None -> ()
  | Some fp ->
    Hashtbl.remove t.fp_of_key key;
    (match Hashtbl.find_opt t.hash fp with
    | None -> ()
    | Some set ->
      let set = IntMap.remove key set in
      if IntMap.is_empty set then Hashtbl.remove t.hash fp
      else Hashtbl.replace t.hash fp set)

let hash_add t key fp =
  Hashtbl.replace t.fp_of_key key fp;
  let set =
    match Hashtbl.find_opt t.hash fp with
    | None -> IntMap.empty
    | Some s -> s
  in
  Hashtbl.replace t.hash fp (IntMap.add key () set)

let put t ~key ~version ~len ~color ~value =
  (* The color rule is enforced here, not trusted from the caller: a
     secret-colored value never lands in unsafe index memory. *)
  let cached = if String.equal color unprotected_color then value else None in
  let e = { e_key = key; e_version = version; e_len = len; e_color = color; e_value = cached } in
  let lane = lane_of t key in
  t.ordered.(lane) <- IntMap.add key e t.ordered.(lane);
  hash_remove t key;
  match cached with None -> () | Some v -> hash_add t key (fingerprint v)

let del t ~key =
  let lane = lane_of t key in
  t.ordered.(lane) <- IntMap.remove key t.ordered.(lane);
  hash_remove t key

let find t key = IntMap.find_opt key t.ordered.(lane_of t key)
let mem t key = IntMap.mem key t.ordered.(lane_of t key)

let cardinal t =
  Array.fold_left (fun acc m -> acc + IntMap.cardinal m) 0 t.ordered

(* Merge-iterate the per-lane maps: each lane contributes an ascending
   cursor starting at [start]; repeatedly take the smallest head until
   [stop] is passed or [limit] entries are produced. *)
let range t ~start ~stop ~limit =
  if limit <= 0 || stop < start then []
  else begin
    let heads =
      Array.map
        (fun m ->
          let seq = IntMap.to_seq_from start m in
          ref (Seq.uncons seq))
        t.ordered
    in
    let out = ref [] in
    let n = ref 0 in
    let continue = ref true in
    while !continue do
      (* find the lane with the smallest pending key; [best < 0] means
         "none yet", so no key value (not even max_int) is an in-band
         sentinel. Lanes partition the key space, so there are no ties. *)
      let best = ref (-1) in
      let best_key = ref 0 in
      Array.iteri
        (fun i h ->
          match !h with
          | Some ((k, _), _) when !best < 0 || k < !best_key ->
            best := i;
            best_key := k
          | _ -> ())
        heads;
      if !best < 0 || !best_key > stop || !n >= limit then continue := false
      else begin
        (match !(heads.(!best)) with
        | Some ((_, e), rest) ->
          out := e :: !out;
          incr n;
          heads.(!best) := Seq.uncons rest
        | None -> assert false);
        if !n >= limit then continue := false
      end
    done;
    List.rev !out
  end

(* Hash-index lookup by value bytes. For secret-colored values this is
   empty by construction: their fingerprints were never computed. *)
let lookup t value =
  match Hashtbl.find_opt t.hash (fingerprint value) with
  | None -> []
  | Some set ->
    IntMap.fold
      (fun key () acc ->
        match find t key with Some e -> e :: acc | None -> acc)
      set []
    |> List.rev
