(* Multi-key transactions over the colored store (ISSUE 9 tentpole,
   part 1).

   The transaction layer sits *outside* the enclave: it orders and
   validates operations, but every value read or write still goes
   through the store's own entry points (the [store_ops] callbacks),
   i.e. through classify/declassify at the partition boundary. The
   layer keeps, in unsafe memory, only what the color rule allows it
   to keep: per-key versions, and the secondary indexes of
   {!module:Index}.

   Concurrency model: the caller (the server's executor, or a test)
   runs [execute]/[scan]/[note_put]/[note_del] under the same mutex
   that serializes store commits ([store_mu] in lib/server). A
   transaction therefore executes atomically at a store commit point:
   its snapshot is the committed state at that point, reads see the
   transaction's own buffered writes, and conflict detection is
   first-writer-wins — a CAS guard compares the version the client
   observed (via [getv]) against the committed version, so whichever
   writer committed first wins and the later CAS aborts.

   Commit emits the transaction's writes as one contiguous run at the
   commit point; the server turns that run into a single replication
   delta batch, and replicas converge by replaying the same writes
   through [note_put]/[note_del]. *)

type store_ops = {
  o_get : int -> (string option, string) result;
  o_set : int -> string -> (unit, string) result;
  o_del : int -> (bool, string) result;
  o_max_value : int;
  o_can_del : bool;
}

type op =
  | T_get of int
  | T_set of int * string
  | T_del of int
  | T_cas of int * int * string  (* key, expected version, value *)

type op_result =
  | R_value of string option
  | R_stored
  | R_deleted
  | R_not_found

type write = W_put of { w_key : int; w_value : string } | W_del of { w_key : int }

type abort = { a_key : int; a_expected : int; a_found : int }

type outcome =
  | Committed of op_result list * write list
  | Aborted of abort
  | Failed of { f_msg : string; f_applied : write list }
      (* a write was inapplicable (phase 1, [f_applied] = []) or — not
         expected after phase-1 gating — a store callback failed
         mid-apply; [f_applied] is the committed prefix the caller must
         still ship to replicas *)

type t = {
  idx : Index.t;
  versions : (int, int) Hashtbl.t;  (* absent = version 0 *)
  value_color : string;
  commits : int Atomic.t;
  aborts : int Atomic.t;
  scans : int Atomic.t;
  scan_items : int Atomic.t;
}

let create ?(lanes = 1) ~value_color () =
  {
    idx = Index.create ~lanes;
    versions = Hashtbl.create 256;
    value_color;
    commits = Atomic.make 0;
    aborts = Atomic.make 0;
    scans = Atomic.make 0;
    scan_items = Atomic.make 0;
  }

let index t = t.idx
let value_color t = t.value_color
let commits t = Atomic.get t.commits
let aborts t = Atomic.get t.aborts
let scans t = Atomic.get t.scans
let scan_items t = Atomic.get t.scan_items

let version t key = Option.value ~default:0 (Hashtbl.find_opt t.versions key)

let bump t key =
  let v = version t key + 1 in
  Hashtbl.replace t.versions key v;
  v

(* Commit-point hooks for non-transactional writes: the server calls
   these for every plain set/del and for every replicated delta it
   applies, so versions and indexes advance identically on primaries
   and replicas. *)
let note_put t ~key ~value =
  let v = bump t key in
  Index.put t.idx ~key ~version:v ~len:(String.length value) ~color:t.value_color
    ~value:(Some value)

let note_del t ~key =
  let _v = bump t key in
  Index.del t.idx ~key

(* The routed core: every per-key access — snapshot read, version
   lookup, presence check, applicability limit, apply callback, commit
   hook — goes through [route key], so one transaction can span several
   independently-owned (t, store) shards. The caller must hold whatever
   serializes commits on *every* routed shard for the whole call (the
   sharded server takes the participant latches in ascending shard
   order — its two-phase commit); [coord] owns the commit/abort
   counters, so summing them across shards never double-counts. *)
let execute_routed ~(route : int -> t * store_ops) ~(coord : t) ops =
  let t_of key = fst (route key) in
  let s_of key = snd (route key) in
  (* Phase 1: validate every op against the snapshot and buffer the
     writes; nothing touches the store, so an abort leaves no trace.
     Applicability is part of validation: a write the store would
     reject in phase 2 — an oversize value, a del on a store without a
     del entry — fails the whole transaction *here*, before anything
     is applied, so phase 2 cannot stop halfway and break atomicity. *)
  let buffered : (int, string option) Hashtbl.t = Hashtbl.create 8 in
  let present key =
    match Hashtbl.find_opt buffered key with
    | Some v -> v <> None
    | None -> Index.mem (t_of key).idx key
  in
  let check_size key value =
    let limit = (s_of key).o_max_value in
    if String.length value > limit then
      Some (Printf.sprintf "value exceeds store value size %d" limit)
    else None
  in
  let rec validate results writes = function
    | [] -> Ok (List.rev results, List.rev writes)
    | op :: rest -> (
      match op with
      | T_get key -> (
        let v =
          match Hashtbl.find_opt buffered key with
          | Some v -> Ok v  (* read your own buffered write *)
          | None -> (s_of key).o_get key
        in
        match v with
        | Ok v -> validate (R_value v :: results) writes rest
        | Error e -> Error (`Fail e))
      | T_set (key, value) -> (
        match check_size key value with
        | Some e -> Error (`Fail e)
        | None ->
          Hashtbl.replace buffered key (Some value);
          validate (R_stored :: results)
            (W_put { w_key = key; w_value = value } :: writes)
            rest)
      | T_del key ->
        if present key then
          if not (s_of key).o_can_del then
            Error (`Fail "del not supported by the store")
          else begin
            Hashtbl.replace buffered key None;
            validate (R_deleted :: results) (W_del { w_key = key } :: writes) rest
          end
        else validate (R_not_found :: results) writes rest
      | T_cas (key, expect, value) ->
        (* First-writer-wins: the guard compares against the version
           committed when this transaction took its snapshot; a write
           committed since the client's [getv] makes the CAS lose. *)
        let found = version (t_of key) key in
        if found <> expect then
          Error (`Abort { a_key = key; a_expected = expect; a_found = found })
        else (
          match check_size key value with
          | Some e -> Error (`Fail e)
          | None ->
            Hashtbl.replace buffered key (Some value);
            validate (R_stored :: results)
              (W_put { w_key = key; w_value = value } :: writes)
              rest))
  in
  match validate [] [] ops with
  | Error (`Abort a) ->
    Atomic.incr coord.aborts;
    Aborted a
  | Error (`Fail e) -> Failed { f_msg = e; f_applied = [] }
  | Ok (results, writes) -> (
    (* Phase 2: apply the buffered writes in op order through the
       store's own entry points, advancing versions and indexes. The
       caller holds the commit mutex, so the run is contiguous and can
       be shipped as one replication batch. Phase 1 already rejected
       inapplicable writes, so a failure here is a store malfunction —
       the applied prefix is committed state (versions and indexes
       advanced), and it is returned so the caller can still ship it
       to replicas instead of silently diverging from them. *)
    let applied = ref [] in
    let rec apply = function
      | [] -> None
      | (W_put { w_key; w_value } as w) :: rest -> (
        match (s_of w_key).o_set w_key w_value with
        | Ok () ->
          note_put (t_of w_key) ~key:w_key ~value:w_value;
          applied := w :: !applied;
          apply rest
        | Error e -> Some e)
      | (W_del { w_key } as w) :: rest -> (
        match (s_of w_key).o_del w_key with
        | Ok _ ->
          note_del (t_of w_key) ~key:w_key;
          applied := w :: !applied;
          apply rest
        | Error e -> Some e)
    in
    match apply writes with
    | Some e -> Failed { f_msg = e; f_applied = List.rev !applied }
    | None ->
      Atomic.incr coord.commits;
      Committed (results, writes))

(* The single-shard case: every key routes to the same layer/store. *)
let execute t store ops = execute_routed ~route:(fun _ -> (t, store)) ~coord:t ops

let scan t ~start ~stop ~limit =
  let items = Index.range t.idx ~start ~stop ~limit in
  Atomic.incr t.scans;
  ignore (Atomic.fetch_and_add t.scan_items (List.length items));
  items

let lookup t ~value = Index.lookup t.idx value
