(** Multi-key read-modify-write transactions with snapshot reads,
    first-writer-wins conflict detection (per-key versions + CAS
    guards) and atomic commit, layered over the colored store.

    All state mutation must be serialized by the caller (the server
    runs everything under its store commit mutex); the counters are
    atomics so a metrics thread may read them concurrently. *)

type store_ops = {
  o_get : int -> (string option, string) result;
  o_set : int -> string -> (unit, string) result;
  o_del : int -> (bool, string) result;
  o_max_value : int;
      (** largest value size [o_set] accepts ([max_int] = unbounded) *)
  o_can_del : bool;  (** [false] when the store has no delete entry *)
}
(** The store's own entry points — every value still crosses the
    partition boundary through these. [o_max_value] and [o_can_del]
    declare what the callbacks would reject, so {!execute} can fail an
    inapplicable transaction during validation instead of discovering
    the rejection halfway through the apply phase. *)

type op =
  | T_get of int
  | T_set of int * string
  | T_del of int
  | T_cas of int * int * string  (** key, expected version, value *)

type op_result =
  | R_value of string option
  | R_stored
  | R_deleted
  | R_not_found

type write = W_put of { w_key : int; w_value : string } | W_del of { w_key : int }

type abort = { a_key : int; a_expected : int; a_found : int }

type outcome =
  | Committed of op_result list * write list
      (** per-op results, plus the writes to emit as one replication
          delta batch at the commit point *)
  | Aborted of abort  (** a CAS guard lost: first writer already won *)
  | Failed of { f_msg : string; f_applied : write list }
      (** the transaction could not commit: either validation rejected
          an inapplicable write (oversize value, del on a del-less
          store — [f_applied] is [[]] and the store is untouched), or a
          store callback failed mid-apply, which phase-1 gating makes
          unexpected; in that case [f_applied] is the prefix of writes
          that DID commit (versions and indexes advanced), and the
          caller must ship it to replicas like a committed batch or
          they diverge permanently *)

type t

val create : ?lanes:int -> value_color:string -> unit -> t
(** [value_color] is the color of the store's values; it is inherited
    by every index entry (see {!module:Index}).

    The version table and indexes start empty and there is no backfill
    path: the layer only learns about keys through its commit hooks.
    The underlying store must therefore be empty when the layer
    attaches — a key written to the store before [create] would be
    invisible to scans, report version 0 via {!version}, and fail the
    in-transaction del presence check. *)

val index : t -> Index.t
val value_color : t -> string

val version : t -> int -> int
(** Committed version of a key; 0 when never written. Every committed
    put or del bumps it by one. *)

val note_put : t -> key:int -> value:string -> unit
(** Commit-point hook for a non-transactional put (plain set, or a
    replicated delta applied on a replica). *)

val note_del : t -> key:int -> unit

val execute : t -> store_ops -> op list -> outcome
(** Run a transaction atomically at the current commit point: validate
    all ops against the snapshot (reads see the transaction's own
    buffered writes, applicability is checked against [o_max_value] /
    [o_can_del]), then — only if every op validated and no CAS guard
    failed — apply the writes through the store. An abort or a
    validation failure leaves the store untouched. *)

val execute_routed :
  route:(int -> t * store_ops) -> coord:t -> op list -> outcome
(** {!execute} generalized over a partitioned store: every per-key
    access — snapshot read, version lookup, presence check,
    applicability limit, apply callback, commit hook — goes through
    [route key], so a transaction may span several independently-owned
    shards (the sharded server's cross-shard two-phase commit: phase 1
    validates against every participant, phase 2 applies only if all
    validated). The caller must hold whatever serializes commits on
    {e every} routed shard for the whole call; [coord] owns the
    commit/abort counters so per-shard sums never double-count.
    [execute t s ops] is [execute_routed ~route:(fun _ -> (t, s))
    ~coord:t ops]. *)

val scan : t -> start:int -> stop:int -> limit:int -> Index.entry list
(** Range scan [start <= key <= stop] (ascending, at most [limit])
    served from the ordered index; secret-colored entries carry no
    value bytes. *)

val lookup : t -> value:string -> Index.entry list
(** Hash-index lookup by value bytes; always [] for secret colors. *)

val commits : t -> int
val aborts : t -> int
val scans : t -> int
val scan_items : t -> int
