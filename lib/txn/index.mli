(** Secondary indexes over the colored store: a per-lane ordered index
    (range scans, merge-iterated in ascending key order) and a hash
    index from value fingerprints back to primary keys.

    Color inheritance: an entry inherits the color of the value it
    indexes, and the index lives in unsafe memory — so entries for
    secret-colored values carry only (key, version, length). Value
    bytes are cached and fingerprinted exclusively for color ["U"];
    {!put} enforces this regardless of what the caller passes, making
    secret values structurally unreachable through the index. *)

type entry = {
  e_key : int;
  e_version : int;
  e_len : int;
  e_color : string;
  e_value : string option;  (** [Some bytes] iff [e_color = "U"] *)
}

type t

val unprotected_color : string
(** ["U"] — the only color whose values the index may cache. *)

val fingerprint : string -> int64
(** 64-bit FNV-1a over the value bytes. *)

val create : lanes:int -> t
val lane_of : t -> int -> int

val put :
  t -> key:int -> version:int -> len:int -> color:string -> value:string option -> unit
(** Insert or overwrite the entry for [key]. [value] is dropped unless
    [color = "U"]. *)

val del : t -> key:int -> unit
val find : t -> int -> entry option
val mem : t -> int -> bool
val cardinal : t -> int

val range : t -> start:int -> stop:int -> limit:int -> entry list
(** Entries with [start <= key <= stop], ascending, at most [limit],
    merged across the per-lane maps. *)

val lookup : t -> string -> entry list
(** Keys currently holding exactly these value bytes — always [] for
    secret-colored values. *)
