(** The in-memory commit log: the ordered sequence of deltas a store has
    committed, shared between the committing executors (writers) and the
    shipper threads (readers).

    Sequence numbers are 1-based and dense. On a primary, {!append}
    assigns them — it is called under the server's store mutex, so the
    log order {e is} the commit order. On a replica, {!append_at}
    mirrors the primary's numbering as deltas apply, which keeps a
    promoted replica able to serve its own downstream replicas from the
    same stream positions.

    The log retains every delta (no truncation): a replica may join at
    any time with [from_seq = 1] and replay history. Memory is bounded
    by the run, not by a retention window — the serving workloads commit
    at most a few hundred thousand small deltas. *)

type t

val create : unit -> t

(** Append under the committing lock; returns the assigned seq. *)
val append : t -> Delta.op -> int

(** Append a committed transaction's writes as one contiguous run under
    a single lock hold — no other committer's delta can land inside the
    run, even when commits from several shards interleave. Returns the
    seq of the last appended delta (the current head when [ops] is
    empty). *)
val append_batch : t -> Delta.op list -> int

(** Mirror an already-numbered delta; [seq] must be exactly [head + 1].
    @raise Invalid_argument on a gap or replay. *)
val append_at : t -> seq:int -> Delta.op -> unit

(** Latest assigned seq; 0 when empty. *)
val head : t -> int

val get : t -> int -> Delta.t option

(** The whole log, in seq order (for convergence oracles and tests). *)
val to_list : t -> Delta.t list
