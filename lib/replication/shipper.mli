(** Primary-side delta shipping: one thread per connected replica
    streams the commit log ({!Log}) over the replica's own TCP
    connection, seals secret-colored payloads ({!Seal}), enforces a
    bounded in-flight window, and tracks acknowledgement lag.

    The serving layer hands a connection here when its protocol reader
    sees the [repl <sync|async> <from_seq>] handshake; from then on the
    shipper owns the socket (writes frames, reads [ack] lines). The
    handshake guarantees the replica sends nothing after the hello until
    it has received frames, so ownership transfers with an empty input
    buffer.

    Sync vs async is the replica's choice, per connection: a sync
    replica participates in {!wait_synced} — the server delays a write's
    response until every live sync replica acked the commit, which is
    what gives clients read-your-writes on replica reads. An async
    replica only bounds its in-flight window. *)

type t

(** [create ~log ()] — [window] bounds unacknowledged in-flight deltas
    per replica (default 1024); [cluster] is the shared secret sealing
    keys derive from; [span name f] wraps shipping work in a telemetry
    span (default: call [f] directly). *)
val create :
  ?window:int ->
  ?cluster:string ->
  ?span:(string -> (unit -> unit) -> unit) ->
  log:Log.t ->
  unit ->
  t

(** Adopt a replica connection (fd already non-blocking) and start its
    shipping thread. Refused (fd closed) when the shipper is draining. *)
val register : t -> Unix.file_descr -> sync:bool -> from_seq:int -> unit

(** Live replica connections. *)
val connected : t -> int

val sync_connected : t -> int

(** Block until every live sync replica has acknowledged [seq] (dead
    replicas stop gating). [true] on success, [false] on timeout. *)
val wait_synced : t -> seq:int -> timeout_s:float -> bool

(** Most recent send→ack lag sample, microseconds (0.0 before any). *)
val last_lag_us : t -> float

val lag_pctiles : t -> Privagic_telemetry.Metrics.pctiles

(** Deltas written to the wire / payloads sealed, over all replicas. *)
val shipped : t -> int

val sealed_count : t -> int

(** Modeled sealing cost accumulated so far ({!Seal.cost_cycles}). *)
val seal_cycles : t -> float

(** Register the shipper's gauges (connections, lag, shipped/sealed
    counts, lag summary) on an obs registry. Closures take the hub mutex
    only at exposition time. *)
val register_obs : t -> Privagic_obs.Registry.t -> unit

(** Flush the log tail to every live replica, wait (bounded) for their
    acks, close the connections and join the threads. Idempotent. *)
val drain : t -> timeout_s:float -> unit

(** Wire-capture tap for the robust-safety monitor
    ({!Privagic_robust}): observes every byte any shipper in the process
    writes to a replication link, before the socket write. [None]
    detaches. The secrecy trace property asserts that no live
    secret-colored value appears in this stream unsealed. *)
val set_wire_tap : (string -> unit) option -> unit
