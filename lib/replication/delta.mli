(** The replication unit and its wire codec.

    A delta is one committed visible effect of the partitioned store —
    a put or a delete — stamped with the commit sequence number the
    primary assigned under its store mutex. The log of deltas is the
    replication stream; shipping it in order reproduces the store.

    Wire format of the primary→replica stream (after the replica's
    [repl] handshake line, which the serving protocol parses):

    {v
    REPLOK <start_seq>                    handshake reply
    DPUT <seq> <key> <color> <s> <len>\r\n<len bytes>\r\n
    DDEL <seq> <key>
    v}

    [<color>] is the color token of the stored value ([U] for unsafe
    memory, otherwise the enclave name); [<s>] is 1 when the payload
    bytes are sealed ({!Seal}) and 0 when they are plaintext. A frame
    carrying a secret-colored payload is {e always} sealed by the
    shipper — plaintext secrets never reach the wire.

    The replica→primary direction is two line verbs, rendered here and
    parsed by {!render_hello}/{!render_ack}'s counterparts: the serving
    protocol's request reader recognizes [repl <sync|async> <from_seq>],
    and the shipper's {!ack_reader} recognizes [ack <seq>].

    Both readers are incremental over a growable byte buffer, exactly
    like the serving protocol's: they never block and keep partial
    input (including partial binary payload blocks) for the next feed. *)

type op =
  | Put of { key : int; color : string; payload : string }
      (** the payload is the client's exact value bytes, plaintext —
          sealing happens at ship time, unsealing at apply time, so the
          log on either side stays inside the enclave abstraction *)
  | Del of { key : int }

type t = { seq : int; op : op }

(** Payload bytes a frame may carry: the serving layer's value bound
    plus the sealing overhead. *)
val max_payload : int

(** {1 Primary side: rendering the stream} *)

val render_ok : int -> string

(** [render ~sealer d] — the wire frame of [d]. [sealer] is applied to
    a [Put] payload whose color is an enclave color (anything but [U]);
    [None] ships plaintext with the sealed flag clear (plain programs,
    whose store is unsafe memory anyway). *)
val render : sealer:(color:string -> nonce:int -> string -> string) option ->
  t -> string

(** {1 Replica side: parsing the stream} *)

type frame =
  | Ok_hello of int                       (** REPLOK: first streamed seq *)
  | Frame of { d : t; sealed : bool }
  | Corrupt of string
      (** malformed frame: a replication stream cannot resynchronize, so
          the reader stops consuming after emitting this *)

type reader

val reader : unit -> reader

val feed : reader -> bytes -> int -> frame list

(** {1 The replica→primary verbs} *)

(** [render_hello ~sync ~from_seq] — the handshake request line the
    serving protocol parses as [Protocol.Repl]. *)
val render_hello : sync:bool -> from_seq:int -> string

val render_ack : int -> string

type ack_reader

val ack_reader : unit -> ack_reader

(** Complete [ack] lines fed so far; [Error _] lines are protocol
    violations the shipper treats as a dead replica. *)
val feed_acks : ack_reader -> bytes -> int -> (int, string) result list
