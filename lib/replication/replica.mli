(** Replica-side replication client: connects to a primary's serving
    port, sends the [repl] handshake, applies the delta stream in order
    through a caller-supplied callback, acknowledges applied positions,
    and reports when the primary is gone (the promotion trigger).

    The apply callback receives plaintext deltas — sealed payloads are
    verified and unsealed here, inside the replica's enclave abstraction
    (the replica runs the same partitioned program, so its enclave holds
    the sealing key; see {!Seal}). An authentication failure is fatal
    for the link: the stream cannot be trusted past a forged frame. *)

type t

type status = Connecting | Streaming | Lost | Stopped

(** [start ~host ~port ~apply ()] — connect (retrying while the primary
    is not up yet, bounded by [connect_timeout_s], default 30) and apply
    the stream. [apply d] is called in seq order, exactly once per
    delta, from the client's own thread; an [Error] return kills the
    link (the replica cannot diverge silently). [on_lost] fires once
    when the link ends for any reason other than {!stop} — a drained
    primary, a killed primary, and a primary that never came up within
    the connect window all look the same here, and all mean the replica
    may promote. [sync] asks the primary to fence client writes on this
    replica's acks. *)
val start :
  ?sync:bool ->
  ?cluster:string ->
  ?from_seq:int ->
  ?connect_timeout_s:float ->
  ?on_lost:(unit -> unit) ->
  host:string ->
  port:int ->
  apply:(Delta.t -> (unit, string) result) ->
  unit ->
  t

val status : t -> status

(** Highest contiguously applied seq. *)
val applied_seq : t -> int

(** Last link error ("" while healthy). *)
val error : t -> string

(** Close the link and join the thread. Does not fire [on_lost]. *)
val stop : t -> unit

(** Block until the link leaves [Connecting]/[Streaming] (primary gone)
    or [timeout_s] elapses; [true] when the link ended. *)
val wait_lost : t -> timeout_s:float -> bool
