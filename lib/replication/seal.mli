(** Authenticated-encryption {e model} for secret-colored delta payloads.

    The replication layer must never let a secret-colored value leave the
    enclave abstraction in plaintext (the CONFLLVM/SecV transport rule:
    confidential data crossing a trust boundary travels as ciphertext).
    This module models that transport seal the same way {!Privagic_sgx}
    models SGX: behaviourally faithful and costed, not cryptographically
    hardened — the keystream and MAC are splitmix64-based PRFs, standing
    in for AES-GCM with a per-enclave key provisioned at attestation
    time.

    Both ends of a replication link derive the same key from the cluster
    secret and the enclave color name, which models the provisioning
    step: a replica runs the same partitioned program, so its enclave of
    color [c] holds the same sealing key as the primary's.

    Properties the tests rely on:
    - round trip: [unseal (seal p) = Ok p];
    - authenticated: flipping any ciphertext or tag bit makes [unseal]
      return [Error _];
    - nonce-separated: the same payload sealed under two sequence
      numbers yields different ciphertexts;
    - no plaintext on the wire: the sealed bytes never contain the
      payload (checked as a trace property over captured wire traffic,
      see test_replication.ml). *)

type key

(** Derive the sealing key of enclave color [color] under [cluster] (the
    shared cluster secret; both sides of a link must agree on it). *)
val derive : cluster:string -> string -> key

val key_color : key -> string

(** Bytes added by the seal (the MAC tag). *)
val overhead : int

(** [seal ~key ~nonce p] — ciphertext of [p] followed by the tag. The
    nonce must be unique per key; the replication layer uses the delta
    sequence number. *)
val seal : key:key -> nonce:int -> string -> string

(** Verify and decrypt. [Error _] on a bad tag or a short input. *)
val unseal : key:key -> nonce:int -> string -> (string, string) result

(** Cost of sealing [n] payload bytes, in CPU cycles, on the same scale
    as {!Privagic_sgx.Cost}: a fixed schedule setup plus a per-16-byte
    AES block charge (AES-NI throughput-level, ~2 cycles/byte, plus the
    GHASH-style tag). Used by telemetry accounting, not by control
    flow. *)
val cost_cycles : int -> float
