(* See the .mli. One thread owns the socket end to end: connect (with
   retry while the primary is still binding), hello, then a read loop
   that feeds the incremental stream reader, unseals, applies in seq
   order and sends one coalesced ack per feed batch. The loop polls a
   stop flag through a short select timeout instead of blocking reads,
   so [stop] never has to interrupt a syscall. *)

type status = Connecting | Streaming | Lost | Stopped

type t = {
  mu : Mutex.t;
  mutable st : status;
  mutable applied : int;
  mutable err : string;
  mutable stopping : bool;
  mutable thread : Thread.t option;
}

let locked t f =
  Mutex.lock t.mu;
  let r = f () in
  Mutex.unlock t.mu;
  r

let resolve host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)

(* Blocking-socket full write; false when the primary is gone. *)
let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let rec go off =
    if off >= Bytes.length b then true
    else
      match Unix.write fd b off (Bytes.length b - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (EINTR, _, _) -> go off
      | exception Unix.Unix_error _ -> false
  in
  go 0

let try_connect host port =
  match
    let fd = Unix.socket PF_INET SOCK_STREAM 0 in
    (try
       Unix.connect fd (ADDR_INET (resolve host, port));
       Unix.setsockopt fd TCP_NODELAY true
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    fd
  with
  | fd -> Some fd
  | exception Unix.Unix_error _ -> None
  | exception Not_found -> None

let run t ~sync ~cluster ~from_seq ~connect_timeout_s ~on_lost ~host ~port
    ~apply =
  let keys = Hashtbl.create 4 in
  let key_for color =
    match Hashtbl.find_opt keys color with
    | Some k -> k
    | None ->
      let k = Seal.derive ~cluster color in
      Hashtbl.replace keys color k;
      k
  in
  let fail = ref "" in
  (* connect, retrying while the primary is not accepting yet *)
  let deadline = Unix.gettimeofday () +. connect_timeout_s in
  let rec connect () =
    if locked t (fun () -> t.stopping) then None
    else
      match try_connect host port with
      | Some fd -> Some fd
      | None ->
        if Unix.gettimeofday () > deadline then begin
          fail := Printf.sprintf "could not connect to %s:%d" host port;
          None
        end
        else begin
          Unix.sleepf 0.05;
          connect ()
        end
  in
  (match connect () with
  | None -> ()
  | Some fd ->
    let r = Delta.reader () in
    let buf = Bytes.create 8192 in
    let stop_with msg = fail := msg in
    let on_frame = function
      | Delta.Ok_hello start ->
        locked t (fun () ->
            t.applied <- start - 1;
            if t.st = Connecting then t.st <- Streaming)
      | Delta.Corrupt msg -> stop_with ("corrupt stream: " ^ msg)
      | Delta.Frame { d; sealed } ->
        let expected = locked t (fun () -> t.applied) + 1 in
        if d.Delta.seq <> expected then
          stop_with
            (Printf.sprintf "stream gap: got seq %d, expected %d" d.Delta.seq
               expected)
        else
          let plain =
            if not sealed then Ok d
            else
              match d.Delta.op with
              | Delta.Del _ -> Ok d (* cannot happen: DDEL is never sealed *)
              | Delta.Put { key; color; payload } -> (
                match
                  Seal.unseal ~key:(key_for color) ~nonce:d.Delta.seq payload
                with
                | Ok pt ->
                  Ok Delta.{ d with op = Put { key; color; payload = pt } }
                | Error e -> Error ("unseal failed (forged frame?): " ^ e))
          in
          (match plain with
          | Error e -> stop_with e
          | Ok d -> (
            match apply d with
            | Ok () -> locked t (fun () -> t.applied <- d.Delta.seq)
            | Error e -> stop_with ("apply failed: " ^ e)))
    in
    if not (write_all fd (Delta.render_hello ~sync ~from_seq)) then
      fail := "handshake write failed";
    while !fail = "" && not (locked t (fun () -> t.stopping)) do
      match Unix.select [ fd ] [] [] 0.05 with
      | exception Unix.Unix_error (EINTR, _, _) -> ()
      | exception Unix.Unix_error _ -> fail := "socket error"
      | [], _, _ -> ()
      | _ -> (
        match Unix.read fd buf 0 (Bytes.length buf) with
        | exception Unix.Unix_error (EINTR, _, _) -> ()
        | exception Unix.Unix_error _ -> fail := "read error"
        | 0 -> fail := "primary closed the stream"
        | n ->
          let before = locked t (fun () -> t.applied) in
          List.iter (fun f -> if !fail = "" then on_frame f) (Delta.feed r buf n);
          let after = locked t (fun () -> t.applied) in
          if after > before && !fail = "" then
            if not (write_all fd (Delta.render_ack after)) then
              fail := "ack write failed")
    done;
    (try Unix.close fd with Unix.Unix_error _ -> ()));
  let fire =
    locked t (fun () ->
        t.err <- !fail;
        if t.stopping then begin
          t.st <- Stopped;
          false
        end
        else begin
          t.st <- Lost;
          true
        end)
  in
  if fire then on_lost ()

let start ?(sync = false) ?(cluster = "privagic") ?(from_seq = 1)
    ?(connect_timeout_s = 30.0) ?(on_lost = fun () -> ()) ~host ~port ~apply
    () =
  let t =
    {
      mu = Mutex.create ();
      st = Connecting;
      applied = max 0 (from_seq - 1);
      err = "";
      stopping = false;
      thread = None;
    }
  in
  let th =
    Thread.create
      (fun () ->
        run t ~sync ~cluster ~from_seq ~connect_timeout_s ~on_lost ~host ~port
          ~apply)
      ()
  in
  t.thread <- Some th;
  t

let status t = locked t (fun () -> t.st)
let applied_seq t = locked t (fun () -> t.applied)
let error t = locked t (fun () -> t.err)

let stop t =
  let th =
    locked t (fun () ->
        t.stopping <- true;
        t.thread)
  in
  (match th with Some th -> Thread.join th | None -> ());
  locked t (fun () -> if t.st <> Lost then t.st <- Stopped)

let wait_lost t ~timeout_s =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    match locked t (fun () -> t.st) with
    | Lost | Stopped -> true
    | Connecting | Streaming ->
      if Unix.gettimeofday () > deadline then false
      else begin
        Unix.sleepf 0.002;
        go ()
      end
  in
  go ()
