(* A mutex-guarded growable array. Readers (shipper threads) poll
   [head]/[get]; there is no condvar because every consumer in this
   runtime already uses short-sleep polling (the Msqueue idle loop, the
   server's backpressure stall), and the shipper's poll interval is far
   below the store's per-op latency. *)

type t = {
  mu : Mutex.t;
  mutable entries : Delta.t array;
  mutable len : int;
}

let dummy = Delta.{ seq = 0; op = Del { key = 0 } }

let create () = { mu = Mutex.create (); entries = Array.make 256 dummy; len = 0 }

let grow t =
  if t.len = Array.length t.entries then begin
    let bigger = Array.make (2 * Array.length t.entries) dummy in
    Array.blit t.entries 0 bigger 0 t.len;
    t.entries <- bigger
  end

let append t op =
  Mutex.lock t.mu;
  grow t;
  let seq = t.len + 1 in
  t.entries.(t.len) <- Delta.{ seq; op };
  t.len <- t.len + 1;
  Mutex.unlock t.mu;
  seq

let append_batch t ops =
  Mutex.lock t.mu;
  List.iter
    (fun op ->
      grow t;
      t.entries.(t.len) <- Delta.{ seq = t.len + 1; op };
      t.len <- t.len + 1)
    ops;
  let last = t.len in
  Mutex.unlock t.mu;
  last

let append_at t ~seq op =
  Mutex.lock t.mu;
  if seq <> t.len + 1 then begin
    let head = t.len in
    Mutex.unlock t.mu;
    invalid_arg
      (Printf.sprintf "Log.append_at: seq %d does not extend head %d" seq head)
  end;
  grow t;
  t.entries.(t.len) <- Delta.{ seq; op };
  t.len <- t.len + 1;
  Mutex.unlock t.mu

let head t =
  Mutex.lock t.mu;
  let n = t.len in
  Mutex.unlock t.mu;
  n

let get t seq =
  Mutex.lock t.mu;
  let r =
    if seq >= 1 && seq <= t.len then Some t.entries.(seq - 1) else None
  in
  Mutex.unlock t.mu;
  r

let to_list t =
  Mutex.lock t.mu;
  let l = Array.to_list (Array.sub t.entries 0 t.len) in
  Mutex.unlock t.mu;
  l
