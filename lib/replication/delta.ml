(* See the .mli. The incremental reader mirrors the serving protocol's
   two-state machine (awaiting a line / awaiting a counted block) over a
   growable compacting buffer; the payload block is binary-safe, which
   matters here because sealed bytes routinely contain '\r' and '\n'. *)

type op =
  | Put of { key : int; color : string; payload : string }
  | Del of { key : int }

type t = { seq : int; op : op }

let max_payload = (64 * 1024) + 64

(* ------------------------------------------------------------------ *)
(* the growable input buffer (same shape as Protocol's) *)

type ibuf = { mutable data : Bytes.t; mutable start : int; mutable len : int }

let ibuf () = { data = Bytes.create 4096; start = 0; len = 0 }

let ibuf_add b (src : Bytes.t) n =
  if b.start > 0 && (b.start > 4096 || b.len = 0) then begin
    Bytes.blit b.data b.start b.data 0 b.len;
    b.start <- 0
  end;
  let need = b.start + b.len + n in
  if need > Bytes.length b.data then begin
    let data = Bytes.create (max need (2 * Bytes.length b.data)) in
    Bytes.blit b.data b.start data 0 b.len;
    b.data <- data;
    b.start <- 0
  end;
  Bytes.blit src 0 b.data (b.start + b.len) n;
  b.len <- b.len + n

let ibuf_line b =
  let rec find i =
    if i >= b.start + b.len then None
    else if Bytes.get b.data i = '\n' then Some i
    else find (i + 1)
  in
  match find b.start with
  | None -> None
  | Some nl ->
    let stop =
      if nl > b.start && Bytes.get b.data (nl - 1) = '\r' then nl - 1 else nl
    in
    let line = Bytes.sub_string b.data b.start (stop - b.start) in
    b.len <- b.len - (nl + 1 - b.start);
    b.start <- nl + 1;
    Some line

let ibuf_block b n =
  if b.len < n + 1 then None
  else
    let term_len =
      if Bytes.get b.data (b.start + n) = '\r' then
        if b.len >= n + 2 && Bytes.get b.data (b.start + n + 1) = '\n' then 2
        else -1
      else if Bytes.get b.data (b.start + n) = '\n' then 1
      else -2
    in
    if term_len = -1 then None
    else if term_len = -2 then Some None
    else begin
      let block = Bytes.sub_string b.data b.start n in
      b.len <- b.len - (n + term_len);
      b.start <- b.start + n + term_len;
      Some (Some block)
    end

let split_words s =
  String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let nat_of s =
  match int_of_string_opt s with Some n when n >= 0 -> Some n | _ -> None

(* ------------------------------------------------------------------ *)
(* rendering *)

let render_ok seq = Printf.sprintf "REPLOK %d\r\n" seq

let render ~sealer d =
  match d.op with
  | Del { key } -> Printf.sprintf "DDEL %d %d\r\n" d.seq key
  | Put { key; color; payload } ->
    let sealed, bytes =
      match sealer with
      | Some seal when color <> "U" ->
        (1, seal ~color ~nonce:d.seq payload)
      | _ -> (0, payload)
    in
    Printf.sprintf "DPUT %d %d %s %d %d\r\n%s\r\n" d.seq key color sealed
      (String.length bytes) bytes

let render_hello ~sync ~from_seq =
  Printf.sprintf "repl %s %d\r\n" (if sync then "sync" else "async") from_seq

let render_ack seq = Printf.sprintf "ack %d\r\n" seq

(* ------------------------------------------------------------------ *)
(* stream reader (replica side) *)

type frame =
  | Ok_hello of int
  | Frame of { d : t; sealed : bool }
  | Corrupt of string

type rstate =
  | Line
  | Body of { seq : int; key : int; color : string; sealed : bool; len : int }
  | Broken  (* a Corrupt frame was emitted; consume nothing further *)

type reader = { rb : ibuf; mutable rstate : rstate }

let reader () = { rb = ibuf (); rstate = Line }

let feed r buf n =
  ibuf_add r.rb buf n;
  let out = ref [] in
  let emit f = out := f :: !out in
  let corrupt msg =
    r.rstate <- Broken;
    emit (Corrupt msg)
  in
  let rec go () =
    match r.rstate with
    | Broken -> ()
    | Body { seq; key; color; sealed; len } -> (
      match ibuf_block r.rb len with
      | None -> ()
      | Some None -> corrupt "payload block not followed by a terminator"
      | Some (Some payload) ->
        r.rstate <- Line;
        emit (Frame { d = { seq; op = Put { key; color; payload } }; sealed });
        go ())
    | Line -> (
      match ibuf_line r.rb with
      | None -> ()
      | Some line ->
        (match split_words line with
        | [] -> () (* tolerate stray blank lines, as the protocol does *)
        | [ "REPLOK"; s ] -> (
          match nat_of s with
          | Some seq -> emit (Ok_hello seq)
          | None -> corrupt ("bad REPLOK line: " ^ line))
        | [ "DDEL"; s; k ] -> (
          match (nat_of s, nat_of k) with
          | Some seq, Some key ->
            emit (Frame { d = { seq; op = Del { key } }; sealed = false })
          | _ -> corrupt ("bad DDEL line: " ^ line))
        | [ "DPUT"; s; k; color; sl; ln ] -> (
          match (nat_of s, nat_of k, nat_of sl, nat_of ln) with
          | Some seq, Some key, Some sealed, Some len
            when sealed <= 1 && len <= max_payload ->
            r.rstate <- Body { seq; key; color; sealed = sealed = 1; len }
          | _ -> corrupt ("bad DPUT line: " ^ line))
        | w :: _ -> corrupt ("unknown replication frame " ^ w));
        go ())
  in
  go ();
  List.rev !out

(* ------------------------------------------------------------------ *)
(* ack reader (primary side) *)

type ack_reader = { ab : ibuf }

let ack_reader () = { ab = ibuf () }

let feed_acks a buf n =
  ibuf_add a.ab buf n;
  let out = ref [] in
  let rec go () =
    match ibuf_line a.ab with
    | None -> ()
    | Some line ->
      (match split_words line with
      | [] -> ()
      | [ "ack"; s ] -> (
        match nat_of s with
        | Some seq -> out := Ok seq :: !out
        | None -> out := Error ("bad ack line: " ^ line) :: !out)
      | w :: _ -> out := Error ("unexpected line from replica: " ^ w) :: !out);
      go ()
  in
  go ();
  List.rev !out
