(* See the .mli. One thread per replica connection; shared state (the
   connection list and each connection's cursor/ack marks) is guarded by
   one hub mutex — updates are a few machine words, contention is
   per-delta, and the store's own per-op cost dwarfs it.

   The wire discipline per thread: send frames while the log has entries
   beyond the cursor and the in-flight window has room, otherwise poll
   the socket for acks with a short select. Sealing happens at render
   time, so the log itself stays plaintext (it never leaves the process;
   the wire never sees a secret-colored payload unsealed). *)

module Tel = Privagic_telemetry

type conn = {
  fd : Unix.file_descr;
  sync : bool;
  acks : Delta.ack_reader;
  inflight : (int * float) Queue.t;  (* seq, sent_at (hub mutex) *)
  mutable cursor : int;              (* next seq to send *)
  mutable acked : int;
  mutable alive : bool;
}

type t = {
  log : Log.t;
  window : int;
  keys : (string, Seal.key) Hashtbl.t;  (* per-color, derived lazily *)
  cluster : string;
  span : string -> (unit -> unit) -> unit;
  mu : Mutex.t;
  mutable conns : conn list;
  mutable threads : Thread.t list;
  mutable draining : bool;
  mutable drain_deadline : float;
  (* metrics (hub mutex) *)
  h_lag : Tel.Metrics.histogram;
  mutable m_last_lag_us : float;
  mutable m_shipped : int;
  mutable m_sealed : int;
  mutable m_seal_cycles : float;
}

let create ?(window = 1024) ?(cluster = "privagic") ?(span = fun _ f -> f ())
    ~log () =
  if window < 1 then invalid_arg "Shipper.create: window must be positive";
  let metrics = Tel.Metrics.create () in
  {
    log;
    window;
    keys = Hashtbl.create 4;
    cluster;
    span;
    mu = Mutex.create ();
    conns = [];
    threads = [];
    draining = false;
    drain_deadline = infinity;
    h_lag = Tel.Metrics.histogram metrics "replication lag (us)";
    m_last_lag_us = 0.0;
    m_shipped = 0;
    m_sealed = 0;
    m_seal_cycles = 0.0;
  }

let locked t f =
  Mutex.lock t.mu;
  let r = f () in
  Mutex.unlock t.mu;
  r

let key_for t color =
  (* hub mutex held: the table is tiny and shared across threads *)
  match Hashtbl.find_opt t.keys color with
  | Some k -> k
  | None ->
    let k = Seal.derive ~cluster:t.cluster color in
    Hashtbl.replace t.keys color k;
    k

(* Wire-capture tap for the robust-safety monitor: every byte the shipper
   puts on a replication link also goes here. Process-wide — the monitor
   captures whatever wire traffic the process produces. *)
let wire_tap : (string -> unit) option ref = ref None

let set_wire_tap f = wire_tap := f

(* Full write on a non-blocking socket; false when the peer is gone or
   stalled past 30 s (a wedged replica must not wedge the primary). *)
let write_all fd s =
  (match !wire_tap with None -> () | Some f -> f s);
  let b = Bytes.unsafe_of_string s in
  let deadline = Unix.gettimeofday () +. 30.0 in
  let rec go off =
    if off >= Bytes.length b then true
    else
      match Unix.write fd b off (Bytes.length b - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
        if Unix.gettimeofday () > deadline then false
        else begin
          (try ignore (Unix.select [] [ fd ] [] 0.25)
           with Unix.Unix_error _ -> ());
          go off
        end
      | exception Unix.Unix_error _ -> false
  in
  go 0

let note_acked t c seq =
  locked t (fun () ->
      if seq > c.acked then c.acked <- seq;
      let now = Unix.gettimeofday () in
      let continue = ref true in
      while !continue do
        match Queue.peek_opt c.inflight with
        | Some (s, sent_at) when s <= seq ->
          ignore (Queue.pop c.inflight);
          let lag = (now -. sent_at) *. 1e6 in
          Tel.Metrics.observe t.h_lag lag;
          t.m_last_lag_us <- lag
        | _ -> continue := false
      done)

let drop t c =
  locked t (fun () -> c.alive <- false);
  try Unix.close c.fd with Unix.Unix_error _ -> ()

(* Read whatever acks arrived; false on EOF/error. *)
let pump_acks t c buf =
  match Unix.read c.fd buf 0 (Bytes.length buf) with
  | 0 -> false
  | n ->
    List.for_all
      (fun r ->
        match r with Ok seq -> note_acked t c seq; true | Error _ -> false)
      (Delta.feed_acks c.acks buf n)
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> true
  | exception Unix.Unix_error _ -> false

let ship_thread t c =
  let buf = Bytes.create 4096 in
  let sealer ~color ~nonce payload =
    locked t (fun () ->
        let k = key_for t color in
        t.m_sealed <- t.m_sealed + 1;
        t.m_seal_cycles <-
          t.m_seal_cycles +. Seal.cost_cycles (String.length payload);
        Seal.seal ~key:k ~nonce payload)
  in
  let ok = ref (write_all c.fd (Delta.render_ok c.cursor)) in
  while !ok && c.alive do
    let head = Log.head t.log in
    let in_flight = locked t (fun () -> c.cursor - 1 - c.acked) in
    if c.cursor <= head && in_flight < t.window then begin
      (* a run of frames in one write, bounded by the window *)
      let stop = min head (c.cursor + (t.window - in_flight) - 1) in
      let frames = Buffer.create 1024 in
      let sent = ref [] in
      let cur = ref c.cursor in
      while !cur <= stop do
        (match Log.get t.log !cur with
        | Some d ->
          Buffer.add_string frames (Delta.render ~sealer:(Some sealer) d);
          sent := d.Delta.seq :: !sent
        | None -> ());
        incr cur
      done;
      let now = Unix.gettimeofday () in
      locked t (fun () ->
          List.iter
            (fun s -> Queue.push (s, now) c.inflight)
            (List.rev !sent);
          c.cursor <- stop + 1;
          t.m_shipped <- t.m_shipped + List.length !sent);
      t.span "repl_ship" (fun () ->
          ok := write_all c.fd (Buffer.contents frames));
      if !ok then ok := pump_acks t c buf
    end
    else begin
      (* nothing to send (or window full): wait for acks or new commits *)
      (match Unix.select [ c.fd ] [] [] 0.002 with
      | [], _, _ -> ()
      | _ -> ok := pump_acks t c buf
      | exception Unix.Unix_error (EINTR, _, _) -> ()
      | exception Unix.Unix_error _ -> ok := false);
      (* drain: once the tail is flushed, linger only for pending acks *)
      if
        t.draining
        && c.cursor > Log.head t.log
        && (c.acked >= Log.head t.log
           || Unix.gettimeofday () > t.drain_deadline)
      then ok := false
    end
  done;
  drop t c

let register t fd ~sync ~from_seq =
  let refuse = locked t (fun () -> t.draining) in
  if refuse then (try Unix.close fd with Unix.Unix_error _ -> ())
  else begin
    let c =
      {
        fd;
        sync;
        acks = Delta.ack_reader ();
        inflight = Queue.create ();
        cursor = max 1 from_seq;
        acked = max 0 (from_seq - 1);
        alive = true;
      }
    in
    let th = Thread.create (fun () -> ship_thread t c) () in
    locked t (fun () ->
        t.conns <- c :: t.conns;
        t.threads <- th :: t.threads)
  end

let connected t =
  locked t (fun () -> List.length (List.filter (fun c -> c.alive) t.conns))

let sync_connected t =
  locked t (fun () ->
      List.length (List.filter (fun c -> c.alive && c.sync) t.conns))

let wait_synced t ~seq ~timeout_s =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    let pending =
      locked t (fun () ->
          List.exists (fun c -> c.alive && c.sync && c.acked < seq) t.conns)
    in
    if not pending then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Thread.yield ();
      Unix.sleepf 0.0005;
      go ()
    end
  in
  go ()

let last_lag_us t = locked t (fun () -> t.m_last_lag_us)
let lag_pctiles t = locked t (fun () -> Tel.Metrics.pctiles t.h_lag)
let shipped t = locked t (fun () -> t.m_shipped)
let sealed_count t = locked t (fun () -> t.m_sealed)
let seal_cycles t = locked t (fun () -> t.m_seal_cycles)

(* Everything the shipper knows, as live gauges: the closures take the
   hub mutex at exposition time, never on the delta path. *)
let register_obs t (reg : Privagic_obs.Registry.t) =
  let g = Privagic_obs.Registry.gauge reg in
  g ~help:"live replica connections" "privagic_repl_connected" (fun () ->
      float_of_int (connected t));
  g ~help:"live synchronous replica connections" "privagic_repl_sync_connected"
    (fun () -> float_of_int (sync_connected t));
  g ~help:"last observed replication lag (microseconds)"
    "privagic_repl_lag_us" (fun () -> last_lag_us t);
  g ~help:"delta frames shipped" "privagic_repl_shipped_total" (fun () ->
      float_of_int (shipped t));
  g ~help:"secret-colored payloads sealed for the wire"
    "privagic_repl_sealed_total" (fun () -> float_of_int (sealed_count t));
  g ~help:"cycles spent sealing payloads" "privagic_repl_seal_cycles_total"
    (fun () -> seal_cycles t);
  Privagic_obs.Registry.summary reg
    ~help:"replication lag distribution (microseconds)"
    "privagic_repl_lag_summary_us" (fun () -> lag_pctiles t)

let drain t ~timeout_s =
  let already =
    locked t (fun () ->
        let a = t.draining in
        if not a then begin
          t.draining <- true;
          t.drain_deadline <- Unix.gettimeofday () +. timeout_s
        end;
        a)
  in
  if not already then begin
    let threads = locked t (fun () -> t.threads) in
    List.iter Thread.join threads
  end
