(* See the .mli: a behavioural model of authenticated encryption, built
   on splitmix64. One PRF word covers 8 keystream bytes; the tag chains
   the same mixer over (key, nonce, ciphertext). Everything is pure
   int64 arithmetic — no allocation beyond the output string. *)

type key = { k0 : int64; k1 : int64; color : string }

let golden = 0x9e3779b97f4a7c15L

(* splitmix64 finalizer: the repo's stock statistical mixer *)
let mix z =
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L
  in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* FNV-style absorb + mix, for key derivation and the tag *)
let absorb h byte =
  mix (Int64.add (Int64.mul h 0x100000001b3L) (Int64.of_int byte))

let hash_string seed s =
  let h = ref seed in
  String.iter (fun c -> h := absorb !h (Char.code c)) s;
  !h

let derive ~cluster color =
  (* a NUL separator keeps ("ab","c") and ("a","bc") apart *)
  let h = hash_string 0xcbf29ce484222325L (cluster ^ "\000" ^ color) in
  { k0 = mix h; k1 = mix (Int64.add h golden); color }

let key_color k = k.color

let overhead = 8

(* Keystream word [j] of (key, nonce): one mixed word yields bytes
   8j..8j+7. The nonce is folded in multiplied by the golden ratio so
   consecutive nonces diverge immediately. *)
let ks_word key ~nonce j =
  mix
    (Int64.logxor key.k1
       (mix
          (Int64.add key.k0
             (Int64.add
                (Int64.mul (Int64.of_int nonce) golden)
                (Int64.of_int j)))))

let ks_byte key ~nonce i =
  let w = ks_word key ~nonce (i / 8) in
  Int64.to_int (Int64.shift_right_logical w (8 * (i mod 8))) land 0xff

let tag key ~nonce ct =
  let h = ref (Int64.logxor key.k0 (mix (Int64.of_int nonce))) in
  String.iter (fun c -> h := absorb !h (Char.code c)) ct;
  mix (Int64.logxor !h key.k1)

let put_le64 b off v =
  for i = 0 to 7 do
    Bytes.set b (off + i)
      (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff))
  done

let get_le64 s off =
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8)
           (Int64.of_int (Char.code s.[off + i]))
  done;
  !v

let xor_stream key ~nonce s =
  String.init (String.length s) (fun i ->
      Char.chr (Char.code s.[i] lxor ks_byte key ~nonce i))

let seal ~key ~nonce p =
  let ct = xor_stream key ~nonce p in
  let out = Bytes.create (String.length ct + overhead) in
  Bytes.blit_string ct 0 out 0 (String.length ct);
  put_le64 out (String.length ct) (tag key ~nonce ct);
  Bytes.unsafe_to_string out

let unseal ~key ~nonce data =
  let n = String.length data in
  if n < overhead then Error "sealed payload shorter than the tag"
  else begin
    let ct = String.sub data 0 (n - overhead) in
    let want = tag key ~nonce ct in
    let got = get_le64 data (n - overhead) in
    if not (Int64.equal want got) then
      Error
        (Printf.sprintf "authentication failed for color %s, nonce %d"
           key.color nonce)
    else Ok (xor_stream key ~nonce ct)
  end

(* AES-NI-class schedule setup plus ~2 cycles/byte streaming and a
   GHASH-like tag pass at 1 cycle/byte, rounded to whole 16-byte blocks.
   On the Cost scale (cycles), comparable to one queue_msg per ~500 B. *)
let cost_cycles n =
  let blocks = float_of_int ((n + 15) / 16) in
  40.0 +. (blocks *. 16.0 *. 3.0)
