(* The four system configurations of the evaluation (§9.2-§9.3), exposed as
   one uniform driver interface over a compiled mini-C program:

   - Unprotected: the plain program, normal CPU mode, data in normal memory
     (the docker-container baseline);
   - Scone: the *whole* plain program and all its data inside one enclave;
     syscalls become in-enclave switchless calls; large datasets overflow
     the EPC;
   - Privagic: the colored program, checked, partitioned, and run by the
     partitioned interpreter with lock-free-queue crossings;
   - Intel_sdk: the EDL port — every exported operation is one
     lock-based switchless ECALL into an enclave that holds the data
     structure (one enclave per color; crossings at switchless price). *)

open Privagic_secure
module Sgx = Privagic_sgx
module Tel = Privagic_telemetry
open Privagic_vm

type kind =
  | Unprotected
  | Scone
  | Privagic of Mode.t
  | Intel_sdk of Mode.t

let kind_name = function
  | Unprotected -> "unprotected"
  | Scone -> "scone"
  | Privagic Mode.Hardened -> "privagic-hardened"
  | Privagic Mode.Relaxed -> "privagic-relaxed"
  | Intel_sdk Mode.Hardened -> "intel-sdk"
  | Intel_sdk Mode.Relaxed -> "intel-sdk-relaxed"

(* The program variant a system runs: Privagic needs the colored source;
   the single-enclave systems run the legacy code. The two-enclave SDK
   port (Intel-sdk-2) reuses the colored program's partition shape with
   switchless-priced crossings — see DESIGN.md. *)
let variant = function
  | Privagic _ | Intel_sdk Mode.Relaxed -> `Colored
  | Unprotected | Scone | Intel_sdk Mode.Hardened -> `Plain

type t = {
  name : string;
  kind : kind;
  machine : Sgx.Machine.t;
  call : string -> Rvalue.t list -> Rvalue.t * float; (* value, latency *)
  heap : Heap.t;
  check_diagnostics : Diagnostic.t list;
}

exception Rejected of Diagnostic.t list

let create ?(config = Sgx.Config.machine_b) ?cost ?(auth_pointers = false)
    ?telemetry ?engine (kind : kind) (src : string) : t =
  let m = Privagic_minic.Driver.compile ~file:"program.mc" src in
  match kind with
  | Unprotected | Scone | Intel_sdk Mode.Hardened ->
    let policy =
      match kind with
      | Unprotected -> Interp.unprotected
      | Intel_sdk _ -> Interp.intel_sdk
      | _ -> Interp.scone
    in
    let it = Interp.create ~config ?cost ?engine m policy in
    (* the single-system interpreters only expose the machine-level events
       (transitions, faults), timed by the sequential clock *)
    (match telemetry with
    | Some r ->
      Sgx.Machine.set_telemetry (Interp.machine it) r;
      Tel.Recorder.set_now r (fun () -> Interp.clock it)
    | None -> ());
    {
      name = kind_name kind;
      kind;
      machine = Interp.machine it;
      call =
        (fun entry args ->
          let before = Interp.clock it in
          let v = Interp.call it entry args in
          (v, Interp.clock it -. before));
      heap = it.Interp.exec.Exec.heap;
      check_diagnostics = [];
    }
  | Privagic mode | Intel_sdk ((Mode.Relaxed) as mode) ->
    let infer = Infer.run ~mode ~auth_pointers m in
    if not (Infer.ok infer) then raise (Rejected infer.Infer.diagnostics);
    let plan = Privagic_partition.Plan.build ~mode ~auth_pointers infer in
    if plan.Privagic_partition.Plan.diagnostics <> [] then
      raise (Rejected plan.Privagic_partition.Plan.diagnostics);
    let crossing =
      match kind with
      | Intel_sdk _ -> Sgx.Machine.switchless_cost
      | _ -> Sgx.Machine.queue_msg_cost
    in
    let pt = Pinterp.create ~config ?cost ~crossing ?engine plan in
    (match telemetry with
    | Some r -> Pinterp.set_telemetry pt r
    | None -> ());
    {
      name = kind_name kind;
      kind;
      machine = Pinterp.machine pt;
      call =
        (fun entry args ->
          let r = Pinterp.call_entry pt entry args in
          (r.Pinterp.value, r.Pinterp.latency_cycles));
      heap = pt.Pinterp.exec.Exec.heap;
      check_diagnostics = [];
    }

(* Client-side buffers in unsafe memory (the network buffers of the
   harness). *)
let alloc_buffer t size = Heap.alloc t.heap Heap.Unsafe size

let write_bytes t addr (s : string) =
  String.iteri
    (fun i c -> Heap.store t.heap (addr + i) 1 (Int64.of_int (Char.code c)))
    s

let read_bytes t addr len =
  String.init len (fun i ->
      Char.chr (Int64.to_int (Heap.load t.heap (addr + i) 1) land 0xff))
