(** The system configurations of the evaluation (§9.2–§9.3) behind one
    driver interface over a compiled mini-C program. *)

open Privagic_secure
module Sgx = Privagic_sgx
open Privagic_vm

type kind =
  | Unprotected
      (** the plain program, normal CPU mode, data in normal memory *)
  | Scone
      (** the whole program and its data in one enclave; syscalls become
          in-enclave switchless calls; large datasets overflow the EPC *)
  | Privagic of Mode.t
      (** checked, partitioned, run with lock-free-queue crossings *)
  | Intel_sdk of Mode.t
      (** [Hardened]: the single-enclave EDL port — one lock-based
          switchless ECALL per exported operation, data in the enclave.
          [Relaxed]: the two-enclave port — the partitioned execution
          shape with switchless-priced crossings. *)

val kind_name : kind -> string

(** Which program variant the system runs: Privagic and the two-enclave
    SDK port need the colored source; the others run the legacy code. *)
val variant : kind -> [ `Colored | `Plain ]

type t = {
  name : string;
  kind : kind;
  machine : Sgx.Machine.t;
  call : string -> Rvalue.t list -> Rvalue.t * float;
      (** [(value, latency in simulated cycles)] *)
  heap : Heap.t;
  check_diagnostics : Diagnostic.t list;
}

exception Rejected of Diagnostic.t list
(** The Privagic checker refused the program. *)

(** [telemetry] attaches a recorder to the simulated execution: the
    partitioned systems record the full event set (fibers, messages,
    chunks, machine events); the single-system baselines record machine
    events only. [engine] selects the VM execution engine (default
    [Privagic_vm.Exec.default_engine ()]). *)
val create :
  ?config:Sgx.Config.t -> ?cost:Sgx.Cost.t -> ?auth_pointers:bool ->
  ?telemetry:Privagic_telemetry.Recorder.t ->
  ?engine:Privagic_vm.Exec.engine -> kind -> string -> t

(** Client-side buffers in unsafe memory (the harness's network buffers). *)
val alloc_buffer : t -> int -> int

val write_bytes : t -> int -> string -> unit
val read_bytes : t -> int -> int -> string
